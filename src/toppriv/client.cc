#include "toppriv/client.h"

#include "util/check.h"

namespace toppriv::core {

ProtectedSearchResult TrustedClient::Search(
    const std::vector<text::TermId>& user_query, size_t k) {
  TOPPRIV_CHECK(!user_query.empty());
  ProtectedSearchResult out;
  out.cycle = generator_->Protect(user_query, &rng_);
  out.cycle_id = next_cycle_id_++;

  // Submit every query in the (already shuffled) cycle; keep only the
  // genuine query's results. The engine logs all of them identically.
  // The whole cycle lands in the query log back-to-back: reserve once
  // instead of letting the log reallocate mid-burst.
  engine_->mutable_query_log().Reserve(out.cycle.queries.size());
  for (size_t i = 0; i < out.cycle.queries.size(); ++i) {
    std::vector<search::ScoredDoc> results =
        engine_->Search(out.cycle.queries[i], k, out.cycle_id);
    if (i == out.cycle.user_index) {
      out.results = std::move(results);
    }
    // Ghost results are discarded here (paper Fig. 1 step 4).
  }
  return out;
}

ProtectedSearchResult TrustedClient::SearchText(
    const std::string& raw_query, size_t k, const text::Analyzer& analyzer) {
  std::vector<text::TermId> terms =
      analyzer.AnalyzeWithVocabulary(raw_query, engine_->corpus().vocabulary());
  return Search(terms, k);
}

std::vector<search::ScoredDoc> TrustedClient::UnprotectedSearch(
    const std::vector<text::TermId>& user_query, size_t k) {
  return engine_->Search(user_query, k, next_cycle_id_++);
}

}  // namespace toppriv::core
