// The (epsilon1, epsilon2)-privacy model (paper Definitions 1-4).
#ifndef TOPPRIV_TOPPRIV_PRIVACY_SPEC_H_
#define TOPPRIV_TOPPRIV_PRIVACY_SPEC_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace toppriv::core {

/// User-chosen privacy requirement plus ghost-generation knobs.
///
/// Semantics (paper Def. 4): every topic whose boost in belief under the
/// user query exceeds `epsilon1` (i.e. every topic in the user intention U)
/// must, under the full query cycle, have boost at most `epsilon2`. The
/// model requires epsilon1 >= epsilon2; both are secret to the adversary.
struct PrivacySpec {
  /// Relevance threshold: topics with B(t|qu) > epsilon1 form U.
  double epsilon1 = 0.05;
  /// Exposure threshold: require B(t|C) <= epsilon2 for all t in U.
  double epsilon2 = 0.01;

  /// Ghost-query length is |qu| scaled by a uniform draw from
  /// [min_length_mult, max_length_mult] (paper Step 3a: "between some
  /// minimum and maximum multiples of |qu|").
  double min_length_mult = 0.8;
  double max_length_mult = 1.5;

  /// When > 0, ignore the epsilon2 stopping rule and emit exactly this many
  /// ghost queries (used by the Fig. 5 comparison, which matches TopPriv's
  /// cycle length to PDX's expansion factor).
  size_t fixed_ghost_count = 0;

  /// Validates the spec (epsilon1 >= epsilon2 > 0 etc.).
  util::Status Validate() const {
    if (epsilon1 <= 0.0 || epsilon1 >= 1.0) {
      return util::Status::InvalidArgument("epsilon1 must be in (0,1)");
    }
    if (epsilon2 <= 0.0 || epsilon2 >= 1.0) {
      return util::Status::InvalidArgument("epsilon2 must be in (0,1)");
    }
    if (epsilon1 < epsilon2) {
      // Paper Section IV-A: epsilon1 >= epsilon2, otherwise a query could
      // satisfy the model with null ghost queries.
      return util::Status::InvalidArgument("requires epsilon1 >= epsilon2");
    }
    if (min_length_mult <= 0.0 || max_length_mult < min_length_mult) {
      return util::Status::InvalidArgument("bad ghost length multipliers");
    }
    return util::Status::Ok();
  }
};

}  // namespace toppriv::core

#endif  // TOPPRIV_TOPPRIV_PRIVACY_SPEC_H_
