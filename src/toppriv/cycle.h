// A query cycle C = {q1 .. qv}: the user query hidden among ghost queries,
// plus the generation diagnostics the experiments report.
#ifndef TOPPRIV_TOPPRIV_CYCLE_H_
#define TOPPRIV_TOPPRIV_CYCLE_H_

#include <cstddef>
#include <vector>

#include "text/vocabulary.h"
#include "topicmodel/lda_model.h"

namespace toppriv::core {

/// Output of the ghost-query generator.
struct QueryCycle {
  /// The shuffled cycle as submitted to the search engine.
  std::vector<std::vector<text::TermId>> queries;
  /// Position of the genuine user query inside `queries`. Known only to the
  /// trusted client; never exposed to the engine.
  size_t user_index = 0;

  // -- Diagnostics (client-side only) --

  /// The extracted user intention U at epsilon1.
  std::vector<topicmodel::TopicId> intention;
  /// Masking topics actually used (paper's T_m), in generation order.
  std::vector<topicmodel::TopicId> masking_topics;
  /// Masking topics attempted but rejected as ineffective (paper's X).
  std::vector<topicmodel::TopicId> rejected_topics;
  /// Boost profile of the user query alone.
  std::vector<double> user_boost;
  /// Boost profile of the full cycle (Eq. 2 posterior minus prior).
  std::vector<double> cycle_boost;
  /// max_{t in U} B(t|qu): exposure before protection.
  double exposure_before = 0.0;
  /// max_{t in U} B(t|C): exposure after protection.
  double exposure_after = 0.0;
  /// max_{t not in U} B(t|C): mask level.
  double mask_level = 0.0;
  /// Whether B(t|C) <= epsilon2 was met for all t in U on exit.
  bool met_epsilon2 = false;
  /// Wall-clock seconds spent generating the cycle (Fig. 2d/3d).
  double generation_seconds = 0.0;

  /// Cycle length v (user query + ghosts).
  size_t length() const { return queries.size(); }
  /// Number of ghost queries (v - 1).
  size_t num_ghosts() const { return queries.empty() ? 0 : queries.size() - 1; }
  /// The genuine query.
  const std::vector<text::TermId>& user_query() const {
    return queries[user_index];
  }
};

}  // namespace toppriv::core

#endif  // TOPPRIV_TOPPRIV_CYCLE_H_
