// Belief bookkeeping: posterior Pr(t|.), boost B(t|.) = Pr(t|.) - Pr(t),
// intention extraction and the exposure/mask metrics of Section V.
#ifndef TOPPRIV_TOPPRIV_BELIEF_H_
#define TOPPRIV_TOPPRIV_BELIEF_H_

#include <vector>

#include "topicmodel/lda_model.h"

namespace toppriv::core {

/// Posterior and boost over all topics for one query (or cycle).
struct BeliefProfile {
  std::vector<double> posterior;
  /// boost[t] = posterior[t] - prior[t]; may be negative.
  std::vector<double> boost;
};

/// Builds a profile from a posterior and the model prior.
BeliefProfile MakeBeliefProfile(const topicmodel::LdaModel& model,
                                std::vector<double> posterior);

/// Def. 2: the user intention U = {t : boost[t] > epsilon1}.
std::vector<topicmodel::TopicId> ExtractIntention(const BeliefProfile& profile,
                                                  double epsilon1);

/// Exposure: max boost over the intention topics (0 if U is empty).
double Exposure(const std::vector<double>& boost,
                const std::vector<topicmodel::TopicId>& intention);

/// Mask level: max boost over topics *outside* the intention.
double MaskLevel(const std::vector<double>& boost,
                 const std::vector<topicmodel::TopicId>& intention);

/// Best (numerically smallest, 1-based) rank attained by any intention topic
/// when all topics are ordered by descending boost. Large values mean the
/// genuine topics are buried under irrelevant ones (paper Fig. 3f). Returns
/// 0 when the intention is empty.
size_t BestRankOfIntention(const std::vector<double>& boost,
                           const std::vector<topicmodel::TopicId>& intention);

}  // namespace toppriv::core

#endif  // TOPPRIV_TOPPRIV_BELIEF_H_
