#include "crypto/modmath.h"

#include <initializer_list>

#include "util/check.h"

namespace toppriv::crypto {

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  TOPPRIV_CHECK_GT(m, 0u);
  uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

uint64_t InvMod(uint64_t a, uint64_t m) {
  // Extended Euclid over signed 128-bit intermediates.
  __int128 t = 0, new_t = 1;
  __int128 r = m, new_r = a % m;
  while (new_r != 0) {
    __int128 q = r / new_r;
    __int128 tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  TOPPRIV_CHECK_EQ(static_cast<uint64_t>(r), 1u);  // gcd must be 1
  if (t < 0) t += m;
  return static_cast<uint64_t>(t);
}

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // Deterministic witness set for 64-bit integers.
  for (uint64_t a : {2ull, 325ull, 9375ull, 28178ull, 450775ull,
                     9780504ull, 1795265022ull}) {
    uint64_t x = PowMod(a % n, d, n);
    if (x == 0 || x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = MulMod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

uint64_t SafePrime() {
  // Largest safe prime (p = 2q + 1 with q prime) below 2^61, found once by
  // downward search with deterministic Miller-Rabin. Cached; the search
  // visits a few thousand candidates and completes in milliseconds.
  static const uint64_t kPrime = [] {
    for (uint64_t p = (1ull << 61) - 1;; p -= 2) {
      if (!IsPrime(p)) continue;
      if (IsPrime((p - 1) / 2)) return p;
    }
  }();
  return kPrime;
}

}  // namespace toppriv::crypto
