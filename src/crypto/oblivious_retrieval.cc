#include "crypto/oblivious_retrieval.h"

#include "crypto/modmath.h"
#include "util/check.h"

namespace toppriv::crypto {

namespace {

uint64_t SplitMix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string StreamCipher(const std::string& data, uint64_t key) {
  std::string out = data;
  uint64_t state = key;
  size_t i = 0;
  while (i < out.size()) {
    state = SplitMix(state);
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<char>(out[i] ^
                                 static_cast<char>(state >> (8 * b)));
    }
  }
  return out;
}

std::string RenderDocumentBody(const corpus::Corpus& corpus,
                               corpus::DocId doc) {
  const corpus::Document& d = corpus.document(doc);
  std::string body = d.title + ":";
  for (text::TermId t : d.tokens) {
    body += " ";
    body += corpus.vocabulary().TermString(t);
  }
  return body;
}

ObliviousDocServer::ObliviousDocServer(const corpus::Corpus& corpus,
                                       util::Rng rng)
    : rng_(rng) {
  const uint64_t p = SafePrime();
  content_keys_.reserve(corpus.num_documents());
  encrypted_bodies_.reserve(corpus.num_documents());
  for (corpus::DocId d = 0; d < corpus.num_documents(); ++d) {
    // Keys live in [2, p-1] so they are valid cipher messages.
    uint64_t key = 2 + rng_.UniformInt(p - 2);
    content_keys_.push_back(key);
    encrypted_bodies_.push_back(
        StreamCipher(RenderDocumentBody(corpus, d), key));
  }
}

const std::string& ObliviousDocServer::EncryptedBody(corpus::DocId doc) const {
  TOPPRIV_CHECK_LT(doc, encrypted_bodies_.size());
  return encrypted_bodies_[doc];
}

ObliviousDocServer::BlindedKeys ObliviousDocServer::BlindKeys(
    const std::vector<corpus::DocId>& result_docs) {
  BlindedKeys out;
  out.request_id = request_ciphers_.size();
  request_ciphers_.emplace_back(&rng_);
  const CommutativeCipher& cipher = request_ciphers_.back();
  out.keys.reserve(result_docs.size());
  for (corpus::DocId d : result_docs) {
    TOPPRIV_CHECK_LT(d, content_keys_.size());
    out.keys.push_back(cipher.Encrypt(content_keys_[d]));
  }
  return out;
}

util::StatusOr<uint64_t> ObliviousDocServer::StripServerLayer(
    uint64_t request_id, uint64_t doubly_encrypted) {
  if (request_id >= request_ciphers_.size()) {
    return util::Status::InvalidArgument("unknown request id");
  }
  observed_.push_back(doubly_encrypted);
  return request_ciphers_[request_id].Decrypt(doubly_encrypted);
}

util::StatusOr<std::string> ObliviousDocClient::Retrieve(
    ObliviousDocServer* server, const std::vector<corpus::DocId>& result_docs,
    size_t choice) {
  if (choice >= result_docs.size()) {
    return util::Status::InvalidArgument("choice out of range");
  }
  // Step 2: server blinds the content keys of the result list.
  ObliviousDocServer::BlindedKeys blinded = server->BlindKeys(result_docs);

  // Step 3: add the client layer over the chosen position only.
  CommutativeCipher client_cipher(&rng_);
  uint64_t doubly = client_cipher.Encrypt(blinded.keys[choice]);

  // Step 4: server strips its layer without learning the position.
  auto client_layer_only =
      server->StripServerLayer(blinded.request_id, doubly);
  if (!client_layer_only.ok()) return client_layer_only.status();

  // Step 5: client strips its own layer, recovering the content key, and
  // decrypts the (publicly fetchable) encrypted body.
  uint64_t content_key = client_cipher.Decrypt(client_layer_only.value());
  return StreamCipher(server->EncryptedBody(result_docs[choice]),
                      content_key);
}

}  // namespace toppriv::crypto
