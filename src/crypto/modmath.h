// Modular arithmetic over 64-bit primes (substrate for the commutative
// cipher). Educational-strength parameters: the protocol structure is
// faithful to SRA/Pohlig-Hellman commutative encryption, but 61-bit moduli
// are NOT cryptographically strong — a production deployment would swap in
// a big-integer backend. The privacy experiments only need the protocol's
// information flow, not its concrete hardness.
#ifndef TOPPRIV_CRYPTO_MODMATH_H_
#define TOPPRIV_CRYPTO_MODMATH_H_

#include <cstdint>

namespace toppriv::crypto {

/// (a * b) mod m without overflow.
uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m);

/// (base ^ exp) mod m by square-and-multiply.
uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m);

/// Greatest common divisor.
uint64_t Gcd(uint64_t a, uint64_t b);

/// Modular inverse of a mod m; requires gcd(a, m) == 1.
uint64_t InvMod(uint64_t a, uint64_t m);

/// Deterministic Miller-Rabin for 64-bit integers.
bool IsPrime(uint64_t n);

/// A fixed safe prime p (p = 2q + 1 with q prime) used as the shared
/// modulus of the commutative cipher.
uint64_t SafePrime();

}  // namespace toppriv::crypto

#endif  // TOPPRIV_CRYPTO_MODMATH_H_
