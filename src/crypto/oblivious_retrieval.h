// Oblivious document retrieval (the paper's excluded Step 6/7 threat).
//
// After inspecting the result list, the user downloads documents; naively,
// WHICH document she fetches betrays her interest even when the queries are
// obfuscated. The paper excludes this threat citing the commutative-
// encryption protocol of [15]; this module implements that protocol so the
// library covers the full search path of Fig. 1:
//
//   1. The server holds, per document, a content key; document bodies are
//      served encrypted under their content key.
//   2. For a result list, the server sends the content keys encrypted under
//      a per-request server key: E_s(k_1), ..., E_s(k_n).
//   3. The client picks position i, re-encrypts with its own key and sends
//      back E_c(E_s(k_i)) — indistinguishable from a re-encryption of any
//      other position.
//   4. The server strips its layer (commutativity!) and returns
//      E_c(k_i); the client strips E_c and decrypts the document body.
//
// The server learns a uniformly-random-looking group element, never i.
#ifndef TOPPRIV_CRYPTO_OBLIVIOUS_RETRIEVAL_H_
#define TOPPRIV_CRYPTO_OBLIVIOUS_RETRIEVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "crypto/commutative.h"
#include "util/rng.h"
#include "util/status.h"

namespace toppriv::crypto {

/// XOR stream cipher keyed by a 64-bit key (SplitMix64 keystream). Stands
/// in for a real symmetric cipher; the protocol only needs "content is
/// unreadable without the content key".
std::string StreamCipher(const std::string& data, uint64_t key);

/// Server side: owns per-document content keys and encrypted bodies.
class ObliviousDocServer {
 public:
  /// Ingests a corpus, assigning every document a random content key.
  ObliviousDocServer(const corpus::Corpus& corpus, util::Rng rng);

  /// The encrypted body of a document (safe to hand out to anyone).
  const std::string& EncryptedBody(corpus::DocId doc) const;

  /// Step 2: content keys of `result_docs`, each encrypted under a fresh
  /// per-request server cipher. Returns the blinded keys; the request id
  /// identifies the server cipher for the follow-up round.
  struct BlindedKeys {
    uint64_t request_id = 0;
    std::vector<uint64_t> keys;
  };
  BlindedKeys BlindKeys(const std::vector<corpus::DocId>& result_docs);

  /// Step 4: strips the server layer from a doubly-encrypted key. The
  /// server cannot tell which result position the value came from.
  util::StatusOr<uint64_t> StripServerLayer(uint64_t request_id,
                                            uint64_t doubly_encrypted);

  /// Adversary's-view helper for tests: the log of values the server saw in
  /// StripServerLayer (all blinded).
  const std::vector<uint64_t>& observed_values() const { return observed_; }

 private:
  std::vector<uint64_t> content_keys_;
  std::vector<std::string> encrypted_bodies_;
  std::vector<CommutativeCipher> request_ciphers_;
  std::vector<uint64_t> observed_;
  util::Rng rng_;
};

/// Client side: runs steps 3 and 5 (choose, unwrap, decrypt).
class ObliviousDocClient {
 public:
  explicit ObliviousDocClient(util::Rng rng) : rng_(rng) {}

  /// Retrieves the plaintext body of `result_docs[choice]` from `server`
  /// without revealing `choice`.
  util::StatusOr<std::string> Retrieve(
      ObliviousDocServer* server, const std::vector<corpus::DocId>& result_docs,
      size_t choice);

 private:
  util::Rng rng_;
};

/// Renders a document's token stream as the plaintext "body" served by the
/// store (titles + space-joined terms).
std::string RenderDocumentBody(const corpus::Corpus& corpus,
                               corpus::DocId doc);

}  // namespace toppriv::crypto

#endif  // TOPPRIV_CRYPTO_OBLIVIOUS_RETRIEVAL_H_
