// SRA / Pohlig-Hellman style commutative cipher: E_k(m) = m^k mod p.
//
// Commutativity E_a(E_b(m)) = E_b(E_a(m)) is what the oblivious document
// retrieval protocol of [Pang-Shen-Krishnan, TOIT'10] — the solution the
// paper cites for its excluded Step 6/7 threat — is built on.
#ifndef TOPPRIV_CRYPTO_COMMUTATIVE_H_
#define TOPPRIV_CRYPTO_COMMUTATIVE_H_

#include <cstdint>

#include "util/rng.h"

namespace toppriv::crypto {

/// Exponentiation cipher over the shared safe-prime group.
///
/// Keys are odd exponents coprime to p-1; decryption uses the modular
/// inverse exponent. Messages must lie in [1, p-1].
class CommutativeCipher {
 public:
  /// Generates a fresh random key from `rng`.
  explicit CommutativeCipher(util::Rng* rng);

  /// Uses the given key (must be coprime to p-1; checked).
  explicit CommutativeCipher(uint64_t key);

  /// E_k(m) = m^k mod p. Requires 1 <= m < p.
  uint64_t Encrypt(uint64_t m) const;

  /// D_k(c) = c^{k^{-1} mod (p-1)} mod p.
  uint64_t Decrypt(uint64_t c) const;

  uint64_t key() const { return key_; }

  /// The shared modulus.
  static uint64_t Modulus();

 private:
  uint64_t key_;
  uint64_t inverse_key_;
};

}  // namespace toppriv::crypto

#endif  // TOPPRIV_CRYPTO_COMMUTATIVE_H_
