#include "crypto/commutative.h"

#include "crypto/modmath.h"
#include "util/check.h"

namespace toppriv::crypto {

namespace {

uint64_t DrawKey(util::Rng* rng) {
  const uint64_t p = SafePrime();
  for (;;) {
    uint64_t k = 3 + rng->UniformInt(p - 4);
    if (Gcd(k, p - 1) == 1) return k;
  }
}

}  // namespace

CommutativeCipher::CommutativeCipher(util::Rng* rng)
    : CommutativeCipher(DrawKey(rng)) {}

CommutativeCipher::CommutativeCipher(uint64_t key) : key_(key) {
  const uint64_t p = SafePrime();
  TOPPRIV_CHECK_EQ(Gcd(key_, p - 1), 1u);
  inverse_key_ = InvMod(key_, p - 1);
}

uint64_t CommutativeCipher::Encrypt(uint64_t m) const {
  const uint64_t p = SafePrime();
  TOPPRIV_CHECK_GE(m, 1u);
  TOPPRIV_CHECK_LT(m, p);
  return PowMod(m, key_, p);
}

uint64_t CommutativeCipher::Decrypt(uint64_t c) const {
  return PowMod(c, inverse_key_, SafePrime());
}

uint64_t CommutativeCipher::Modulus() { return SafePrime(); }

}  // namespace toppriv::crypto
