#include "adversary/log_segmentation.h"

#include <map>
#include <set>

#include "util/check.h"

namespace toppriv::adversary {

std::vector<Segment> SegmentByGaps(const std::vector<search::LoggedQuery>& log,
                                   double gap_threshold_seconds) {
  std::vector<Segment> segments;
  Segment current;
  for (size_t i = 0; i < log.size(); ++i) {
    if (!current.empty() &&
        log[i].timestamp - log[i - 1].timestamp > gap_threshold_seconds) {
      segments.push_back(std::move(current));
      current.clear();
    }
    current.push_back(i);
  }
  if (!current.empty()) segments.push_back(std::move(current));
  return segments;
}

SegmentationScore ScoreSegmentation(
    const std::vector<Segment>& segments,
    const std::vector<search::LoggedQuery>& log) {
  SegmentationScore score;
  if (log.empty()) return score;

  // Pairwise counting. Same-segment pairs vs same-cycle pairs.
  auto pairs_of = [](size_t n) { return n * (n - 1) / 2; };

  size_t predicted_pairs = 0, true_pairs = 0, hit_pairs = 0;
  for (const Segment& segment : segments) {
    predicted_pairs += pairs_of(segment.size());
    for (size_t a = 0; a < segment.size(); ++a) {
      for (size_t b = a + 1; b < segment.size(); ++b) {
        if (log[segment[a]].cycle_id == log[segment[b]].cycle_id) {
          ++hit_pairs;
        }
      }
    }
  }
  std::map<uint64_t, size_t> cycle_sizes;
  for (const search::LoggedQuery& entry : log) ++cycle_sizes[entry.cycle_id];
  for (const auto& [cycle, size] : cycle_sizes) true_pairs += pairs_of(size);

  score.pair_precision =
      predicted_pairs > 0
          ? static_cast<double>(hit_pairs) / static_cast<double>(predicted_pairs)
          : 0.0;
  score.pair_recall =
      true_pairs > 0
          ? static_cast<double>(hit_pairs) / static_cast<double>(true_pairs)
          : 0.0;

  // Exact-cycle recovery.
  std::map<uint64_t, std::set<size_t>> true_groups;
  for (size_t i = 0; i < log.size(); ++i) {
    true_groups[log[i].cycle_id].insert(i);
  }
  size_t exact = 0;
  for (const Segment& segment : segments) {
    std::set<size_t> members(segment.begin(), segment.end());
    auto it = true_groups.find(log[segment.front()].cycle_id);
    if (it != true_groups.end() && it->second == members) ++exact;
  }
  score.exact_cycles = static_cast<double>(exact) /
                       static_cast<double>(true_groups.size());
  return score;
}

void SimulateArrivalTimes(std::vector<search::LoggedQuery>* log,
                          double burst_spacing, double min_think,
                          double max_think, double pacing_jitter,
                          util::Rng* rng) {
  TOPPRIV_CHECK(log != nullptr);
  TOPPRIV_CHECK_GE(max_think, min_think);
  double now = 0.0;
  for (size_t i = 0; i < log->size(); ++i) {
    if (i > 0) {
      if ((*log)[i].cycle_id == (*log)[i - 1].cycle_id) {
        now += burst_spacing * rng->Uniform(0.5, 1.5) +
               pacing_jitter * rng->Uniform();
      } else {
        now += rng->Uniform(min_think, max_think);
      }
    }
    (*log)[i].timestamp = now;
  }
}

}  // namespace toppriv::adversary
