#include "adversary/attacks.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "toppriv/belief.h"
#include "util/check.h"

namespace toppriv::adversary {

namespace {

// Cycle boost B(t|C) from the adversary's standpoint: infer each logged
// query independently, average per Eq. 2, subtract the prior.
std::vector<double> CycleBoost(const topicmodel::LdaModel& model,
                               const topicmodel::LdaInferencer& inferencer,
                               const std::vector<std::vector<text::TermId>>& queries) {
  TOPPRIV_CHECK(!queries.empty());
  std::vector<std::vector<double>> posteriors;
  posteriors.reserve(queries.size());
  for (const auto& q : queries) {
    posteriors.push_back(inferencer.InferQuery(q));
  }
  std::vector<double> mix =
      topicmodel::LdaInferencer::CyclePosterior(posteriors);
  const std::vector<double>& prior = model.prior();
  for (size_t t = 0; t < mix.size(); ++t) mix[t] -= prior[t];
  return mix;
}

std::vector<topicmodel::TopicId> TopM(const std::vector<double>& boost,
                                      size_t m) {
  std::vector<topicmodel::TopicId> order(boost.size());
  for (size_t t = 0; t < order.size(); ++t) {
    order[t] = static_cast<topicmodel::TopicId>(t);
  }
  m = std::min(m, order.size());
  std::partial_sort(order.begin(), order.begin() + m, order.end(),
                    [&boost](topicmodel::TopicId a, topicmodel::TopicId b) {
                      if (boost[a] != boost[b]) return boost[a] > boost[b];
                      return a < b;
                    });
  order.resize(m);
  return order;
}

}  // namespace

RecoveryScore ScoreRecovery(const std::vector<topicmodel::TopicId>& guessed,
                            const std::vector<topicmodel::TopicId>& truth) {
  RecoveryScore score;
  if (guessed.empty() || truth.empty()) return score;
  std::unordered_set<topicmodel::TopicId> truth_set(truth.begin(),
                                                    truth.end());
  size_t hits = 0;
  for (topicmodel::TopicId t : guessed) {
    if (truth_set.count(t)) ++hits;
  }
  score.precision = static_cast<double>(hits) / static_cast<double>(guessed.size());
  score.recall = static_cast<double>(hits) / static_cast<double>(truth_set.size());
  return score;
}

std::vector<topicmodel::TopicId> TopicInferenceAttack::GuessIntention(
    const CycleView& cycle, size_t m) const {
  return TopM(CycleBoost(model_, inferencer_, cycle.queries), m);
}

size_t GhostDiscountAttack::IdentifyUserQuery(const CycleView& cycle) const {
  TOPPRIV_CHECK(!cycle.queries.empty());
  std::vector<double> cycle_boost =
      CycleBoost(model_, inferencer_, cycle.queries);

  // For each query: compute its private intention at the guessed epsilon1,
  // then measure how suppressed those topics are in the cycle. TopPriv
  // suppresses the *genuine* intention, so the adversary bets on the query
  // whose own topics show the LOWEST residual exposure in the cycle.
  double best_score = 0.0;
  size_t best_index = 0;
  bool first = true;
  for (size_t i = 0; i < cycle.queries.size(); ++i) {
    core::BeliefProfile profile = core::MakeBeliefProfile(
        model_, inferencer_.InferQuery(cycle.queries[i]));
    std::vector<topicmodel::TopicId> intention =
        core::ExtractIntention(profile, guessed_epsilon1_);
    double residual;
    if (intention.empty()) {
      // No topics cleared the guessed threshold; treat as fully exposed so
      // this query is not preferred.
      residual = 1.0;
    } else {
      residual = 0.0;
      for (topicmodel::TopicId t : intention) {
        residual = std::max(residual, cycle_boost[t]);
      }
    }
    if (first || residual < best_score) {
      best_score = residual;
      best_index = i;
      first = false;
    }
  }
  return best_index;
}

std::vector<topicmodel::TopicId> TermEliminationAttack::GuessIntention(
    const CycleView& cycle, size_t discount_m, size_t guess_m) const {
  std::vector<double> boost = CycleBoost(model_, inferencer_, cycle.queries);
  std::vector<topicmodel::TopicId> discounted = TopM(boost, discount_m);
  std::unordered_set<topicmodel::TopicId> discounted_set(discounted.begin(),
                                                         discounted.end());

  // Union of all cycle terms, minus terms dominantly associated with the
  // discounted topics (argmax_t Pr(w|t) Pr(t)).
  const std::vector<double>& prior = model_.prior();
  std::set<text::TermId> kept;
  for (const auto& q : cycle.queries) {
    for (text::TermId w : q) {
      double best = -1.0;
      topicmodel::TopicId best_t = 0;
      for (size_t t = 0; t < model_.num_topics(); ++t) {
        double s = model_.Phi(static_cast<topicmodel::TopicId>(t), w) * prior[t];
        if (s > best) {
          best = s;
          best_t = static_cast<topicmodel::TopicId>(t);
        }
      }
      if (!discounted_set.count(best_t)) kept.insert(w);
    }
  }
  if (kept.empty()) return {};

  std::vector<text::TermId> residual_query(kept.begin(), kept.end());
  core::BeliefProfile profile = core::MakeBeliefProfile(
      model_, inferencer_.InferQuery(residual_query));
  return TopM(profile.boost, guess_m);
}

double ProbingAttack::BestReplayMatchRate(const CycleView& cycle,
                                          util::Rng* rng) const {
  if (cycle.queries.size() < 2) return 0.0;

  // Canonical form: sorted term ids, so shuffled word order cannot hide an
  // exact match.
  auto canon = [](std::vector<text::TermId> q) {
    std::sort(q.begin(), q.end());
    return q;
  };
  std::set<std::vector<text::TermId>> logged;
  for (const auto& q : cycle.queries) logged.insert(canon(q));

  double best_rate = 0.0;
  for (size_t i = 0; i < cycle.queries.size(); ++i) {
    core::QueryCycle replay = generator_->Protect(cycle.queries[i], rng);
    size_t matches = 0;
    size_t ghosts = 0;
    for (size_t j = 0; j < replay.queries.size(); ++j) {
      if (j == replay.user_index) continue;  // the probe itself
      ++ghosts;
      if (logged.count(canon(replay.queries[j]))) ++matches;
    }
    if (ghosts > 0) {
      best_rate = std::max(
          best_rate, static_cast<double>(matches) / static_cast<double>(ghosts));
    }
  }
  return best_rate;
}

}  // namespace toppriv::adversary
