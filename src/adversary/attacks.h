// Adversary suite implementing the attack scenarios of paper Section IV-D.
//
// The adversary is the search engine: it holds the corpus, the LDA model and
// the ghost-generation algorithm, and analyzes logged query cycles after the
// fact. Each attack reports how well the adversary recovers the user
// intention (or identifies the genuine query); the experiments run them
// against protected and unprotected logs to validate the resilience claims.
#ifndef TOPPRIV_ADVERSARY_ATTACKS_H_
#define TOPPRIV_ADVERSARY_ATTACKS_H_

#include <cstddef>
#include <vector>

#include "topicmodel/inference.h"
#include "topicmodel/lda_model.h"
#include "toppriv/ghost_generator.h"

namespace toppriv::adversary {

/// The adversary's view of one cycle plus (experiment-side) ground truth.
struct CycleView {
  /// Queries as logged by the engine (shuffled; ghosts indistinguishable).
  std::vector<std::vector<text::TermId>> queries;
  /// Ground truth, unknown to the adversary: which entry is genuine.
  size_t true_user_index = 0;
  /// Ground truth: the intention U of the genuine query at the user's
  /// (secret) epsilon1.
  std::vector<topicmodel::TopicId> true_intention;
};

/// Precision/recall of a guessed topic set against the truth.
struct RecoveryScore {
  double precision = 0.0;
  double recall = 0.0;
};

RecoveryScore ScoreRecovery(const std::vector<topicmodel::TopicId>& guessed,
                            const std::vector<topicmodel::TopicId>& truth);

/// Attack 1 — "discount high-exposure topics": rank all topics by B(t|C)
/// and guess the top-m as the intention. Against TopPriv the genuine topics
/// sit below many masking topics (paper Fig. 3f), so recall collapses.
class TopicInferenceAttack {
 public:
  TopicInferenceAttack(const topicmodel::LdaModel& model,
                       const topicmodel::LdaInferencer& inferencer)
      : model_(model), inferencer_(inferencer) {}

  /// Top-m topics by cycle boost.
  std::vector<topicmodel::TopicId> GuessIntention(const CycleView& cycle,
                                                  size_t m) const;

  RecoveryScore Evaluate(const CycleView& cycle, size_t m) const {
    return ScoreRecovery(GuessIntention(cycle, m), cycle.true_intention);
  }

 private:
  const topicmodel::LdaModel& model_;
  const topicmodel::LdaInferencer& inferencer_;
};

/// Attack 2 — "discount ghost queries": the adversary guesses thresholds
/// (epsilon1', epsilon2') and flags as the genuine query the one whose own
/// relevant topics are best suppressed in the cycle (the signature TopPriv
/// would leave if the thresholds were known). Reports whether it picked the
/// right query.
class GhostDiscountAttack {
 public:
  GhostDiscountAttack(const topicmodel::LdaModel& model,
                      const topicmodel::LdaInferencer& inferencer,
                      double guessed_epsilon1)
      : model_(model),
        inferencer_(inferencer),
        guessed_epsilon1_(guessed_epsilon1) {}

  /// Index of the query the adversary believes is genuine.
  size_t IdentifyUserQuery(const CycleView& cycle) const;

  bool Evaluate(const CycleView& cycle) const {
    return IdentifyUserQuery(cycle) == cycle.true_user_index;
  }

 private:
  const topicmodel::LdaModel& model_;
  const topicmodel::LdaInferencer& inferencer_;
  double guessed_epsilon1_;
};

/// Attack 3 — "eliminate query words relating to high-exposure topics":
/// drop, from the union of cycle terms, every term dominantly associated
/// with the top-m exposed topics, re-infer on the remainder and guess the
/// intention. The paper argues this removes genuine terms too (the "apache"
/// example); the evaluation measures recall of the truth.
class TermEliminationAttack {
 public:
  TermEliminationAttack(const topicmodel::LdaModel& model,
                        const topicmodel::LdaInferencer& inferencer)
      : model_(model), inferencer_(inferencer) {}

  /// Guessed intention after eliminating terms of the `discount_m` most
  /// exposed topics and keeping the top-`guess_m` remaining topics.
  std::vector<topicmodel::TopicId> GuessIntention(const CycleView& cycle,
                                                  size_t discount_m,
                                                  size_t guess_m) const;

  RecoveryScore Evaluate(const CycleView& cycle, size_t discount_m,
                         size_t guess_m) const {
    return ScoreRecovery(GuessIntention(cycle, discount_m, guess_m),
                         cycle.true_intention);
  }

 private:
  const topicmodel::LdaModel& model_;
  const topicmodel::LdaInferencer& inferencer_;
};

/// Attack 4 — "issue probing queries" (replay): treat each logged query as
/// the user query, re-run the (public) ghost-generation algorithm, and test
/// whether it reproduces the rest of the cycle. Randomized masking-topic and
/// word selection makes reproduction fail (paper Section IV-D).
class ProbingAttack {
 public:
  /// `generator` is the adversary's copy of the client implementation.
  explicit ProbingAttack(core::GhostQueryGenerator* generator)
      : generator_(generator) {}

  /// Fraction of replayed ghost queries that exactly match a logged query
  /// in the cycle, maximized over the choice of assumed user query.
  double BestReplayMatchRate(const CycleView& cycle, util::Rng* rng) const;

 private:
  core::GhostQueryGenerator* generator_;
};

}  // namespace toppriv::adversary

#endif  // TOPPRIV_ADVERSARY_ATTACKS_H_
