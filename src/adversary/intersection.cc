#include "adversary/intersection.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace toppriv::adversary {

std::vector<topicmodel::TopicId> IntersectionAttack::Intersect(
    const std::vector<CycleView>& cycles, size_t m) const {
  TOPPRIV_CHECK(!cycles.empty());
  TopicInferenceAttack per_cycle(model_, inferencer_);

  std::set<topicmodel::TopicId> surviving;
  bool first = true;
  for (const CycleView& cycle : cycles) {
    std::vector<topicmodel::TopicId> top = per_cycle.GuessIntention(cycle, m);
    std::set<topicmodel::TopicId> candidates(top.begin(), top.end());
    if (first) {
      surviving = std::move(candidates);
      first = false;
    } else {
      std::set<topicmodel::TopicId> next;
      std::set_intersection(surviving.begin(), surviving.end(),
                            candidates.begin(), candidates.end(),
                            std::inserter(next, next.begin()));
      surviving = std::move(next);
    }
    if (surviving.empty()) break;
  }
  return {surviving.begin(), surviving.end()};
}

RecoveryScore IntersectionAttack::Evaluate(
    const std::vector<CycleView>& cycles, size_t m) const {
  TOPPRIV_CHECK(!cycles.empty());
  return ScoreRecovery(Intersect(cycles, m), cycles.front().true_intention);
}

}  // namespace toppriv::adversary
