// Cross-cycle intersection attack (extension beyond the paper's per-cycle
// threat analysis).
//
// Observation: the paper's adversary analyzes cycles independently, but an
// enterprise query log contains MANY cycles from the same user. If the user
// repeatedly searches the same topic, her genuine topics persist across
// cycles while stateless TopPriv's randomly-chosen masking topics churn, so
// the intersection of per-cycle candidate sets converges to the intention.
// The session-hardened client (toppriv/session.h) defeats this by holding
// the masking topics fixed; bench/session_intersection quantifies both.
#ifndef TOPPRIV_ADVERSARY_INTERSECTION_H_
#define TOPPRIV_ADVERSARY_INTERSECTION_H_

#include <cstddef>
#include <vector>

#include "adversary/attacks.h"

namespace toppriv::adversary {

/// Intersection attack over a series of cycles attributed to one user.
class IntersectionAttack {
 public:
  IntersectionAttack(const topicmodel::LdaModel& model,
                     const topicmodel::LdaInferencer& inferencer)
      : model_(model), inferencer_(inferencer) {}

  /// For each cycle, takes the top-`m` topics by cycle boost as the
  /// candidate set, then intersects the candidate sets across all cycles.
  /// Returns the surviving topics (the adversary's guessed intention).
  std::vector<topicmodel::TopicId> Intersect(
      const std::vector<CycleView>& cycles, size_t m) const;

  /// Recovery of the (shared) true intention of the cycle series.
  RecoveryScore Evaluate(const std::vector<CycleView>& cycles,
                         size_t m) const;

 private:
  const topicmodel::LdaModel& model_;
  const topicmodel::LdaInferencer& inferencer_;
};

}  // namespace toppriv::adversary

#endif  // TOPPRIV_ADVERSARY_INTERSECTION_H_
