// Cycle recovery from an untagged query log.
//
// The engine's QueryLog carries cycle tags for experiment bookkeeping, but
// a realistic adversary only sees arrival order and timestamps. Because the
// trusted client submits a cycle as a machine-paced burst while genuine
// inter-cycle gaps are human think time, a gap threshold segments the log;
// this module implements that attack step and its countermeasure knob
// (pacing jitter) so the threat model's "the adversary can group a cycle"
// assumption can itself be tested rather than assumed.
#ifndef TOPPRIV_ADVERSARY_LOG_SEGMENTATION_H_
#define TOPPRIV_ADVERSARY_LOG_SEGMENTATION_H_

#include <cstddef>
#include <vector>

#include "search/engine.h"
#include "util/rng.h"

namespace toppriv::adversary {

/// One recovered segment: indices into the log's entry vector.
using Segment = std::vector<size_t>;

/// Splits the log wherever consecutive arrivals are more than
/// `gap_threshold_seconds` apart.
std::vector<Segment> SegmentByGaps(const std::vector<search::LoggedQuery>& log,
                                   double gap_threshold_seconds);

/// Quality of a recovered segmentation against the true cycle tags:
/// pairwise precision/recall over same-segment query pairs.
struct SegmentationScore {
  double pair_precision = 0.0;
  double pair_recall = 0.0;
  /// Fraction of true cycles recovered exactly (same member set).
  double exact_cycles = 0.0;
};
SegmentationScore ScoreSegmentation(
    const std::vector<Segment>& segments,
    const std::vector<search::LoggedQuery>& log);

/// Simulates arrival times onto a log: queries within one cycle are spaced
/// by `burst_spacing` +/- jitter, cycles separated by think-time draws in
/// [min_think, max_think]. `pacing_jitter` > 0 is the client-side
/// countermeasure: it stretches within-cycle spacing towards think-time
/// scales, blurring the boundary signal.
void SimulateArrivalTimes(std::vector<search::LoggedQuery>* log,
                          double burst_spacing, double min_think,
                          double max_think, double pacing_jitter,
                          util::Rng* rng);

}  // namespace toppriv::adversary

#endif  // TOPPRIV_ADVERSARY_LOG_SEGMENTATION_H_
