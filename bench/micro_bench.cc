// Google-benchmark microbenchmarks for the hot paths: index construction,
// posting-list iteration, query evaluation, LDA query inference and ghost
// generation. Complements the figure-level benches with per-operation
// numbers (the paper's Figs. 2d/3d report end-to-end generation time; these
// break it down).

#include <benchmark/benchmark.h>

#include <memory>

#include "corpus/generator.h"
#include "corpus/workload.h"
#include "index/inverted_index.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "toppriv/ghost_generator.h"

namespace {

using namespace toppriv;

// Small shared world, built once (kept deliberately modest so the micro
// bench binary stays fast).
struct MicroWorld {
  corpus::Corpus corpus;
  corpus::GroundTruthModel truth;
  index::InvertedIndex index;
  topicmodel::LdaModel model;
  std::vector<corpus::BenchmarkQuery> workload;
};

const MicroWorld& World() {
  static const MicroWorld* world = [] {
    auto* w = new MicroWorld();
    corpus::GeneratorParams params;
    params.num_docs = 800;
    params.mean_doc_length = 100;
    params.tail_vocab_size = 1500;
    w->corpus = corpus::CorpusGenerator(params).Generate(&w->truth);
    w->index = index::InvertedIndex::Build(w->corpus);
    topicmodel::TrainerOptions options;
    options.num_topics = 100;
    options.iterations = 40;
    w->model = topicmodel::GibbsTrainer(options).Train(w->corpus);
    corpus::WorkloadParams wp;
    wp.num_queries = 50;
    w->workload =
        corpus::WorkloadGenerator(w->corpus, w->truth, wp).Generate();
    return w;
  }();
  return *world;
}

void BM_IndexBuild(benchmark::State& state) {
  const auto& world = World();
  for (auto _ : state) {
    index::InvertedIndex index = index::InvertedIndex::Build(world.corpus);
    benchmark::DoNotOptimize(index.num_terms());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world.corpus.total_tokens()));
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

void BM_PostingListScan(benchmark::State& state) {
  const auto& world = World();
  // Hottest term = longest list.
  text::TermId hottest = 0;
  for (text::TermId t = 0; t < world.index.num_terms(); ++t) {
    if (world.index.DocFreq(t) > world.index.DocFreq(hottest)) hottest = t;
  }
  const index::PostingList& list = world.index.Postings(hottest);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      sum += it.Get().doc + it.Get().tf;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(list.size()));
}
BENCHMARK(BM_PostingListScan);

void BM_QueryEvaluation(benchmark::State& state) {
  const auto& world = World();
  search::SearchEngine engine(world.corpus, world.index,
                              search::MakeBm25Scorer());
  size_t qi = 0;
  for (auto _ : state) {
    const auto& q = world.workload[qi % world.workload.size()];
    benchmark::DoNotOptimize(engine.Evaluate(q.term_ids, 10));
    ++qi;
  }
}
BENCHMARK(BM_QueryEvaluation)->Unit(benchmark::kMicrosecond);

void BM_LdaInference(benchmark::State& state) {
  const auto& world = World();
  topicmodel::LdaInferencer inferencer(world.model);
  size_t qi = 0;
  for (auto _ : state) {
    const auto& q = world.workload[qi % world.workload.size()];
    benchmark::DoNotOptimize(inferencer.InferQuery(q.term_ids));
    ++qi;
  }
}
BENCHMARK(BM_LdaInference)->Unit(benchmark::kMicrosecond);

void BM_GhostGeneration(benchmark::State& state) {
  const auto& world = World();
  topicmodel::LdaInferencer inferencer(world.model);
  core::PrivacySpec spec;
  spec.epsilon2 = static_cast<double>(state.range(0)) / 1000.0;
  core::GhostQueryGenerator generator(world.model, inferencer, spec);
  util::Rng rng(1);
  size_t qi = 0;
  double total_cycle_len = 0.0;
  size_t cycles = 0;
  for (auto _ : state) {
    const auto& q = world.workload[qi % world.workload.size()];
    core::QueryCycle cycle = generator.Protect(q.term_ids, &rng);
    benchmark::DoNotOptimize(cycle.length());
    total_cycle_len += static_cast<double>(cycle.length());
    ++cycles;
    ++qi;
  }
  state.counters["avg_cycle_len"] =
      cycles > 0 ? total_cycle_len / static_cast<double>(cycles) : 0.0;
}
BENCHMARK(BM_GhostGeneration)
    ->Arg(10)   // eps2 = 1%
    ->Arg(30)   // eps2 = 3%
    ->Unit(benchmark::kMillisecond);

void BM_GibbsTrainingSweep(benchmark::State& state) {
  const auto& world = World();
  topicmodel::TrainerOptions options;
  options.num_topics = static_cast<size_t>(state.range(0));
  options.iterations = 2;
  options.estimation_samples = 1;
  for (auto _ : state) {
    topicmodel::GibbsTrainer trainer(options);
    benchmark::DoNotOptimize(trainer.Train(world.corpus).num_topics());
  }
  state.SetItemsProcessed(
      state.iterations() * 2 *
      static_cast<int64_t>(world.corpus.total_tokens()));
}
BENCHMARK(BM_GibbsTrainingSweep)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
