// Microbenchmarks for the hot paths: index construction, posting-list
// decoding (iterator and block-batch), query evaluation under both
// strategies (TAAT and MaxScore), live-index ingest (docs/s vs batch
// size), segment merging, LDA query inference and ghost generation.
// Complements the figure-level benches with per-operation numbers (the
// paper's Figs. 2d/3d report end-to-end generation time; these break it
// down).
//
// Built two ways: against Google Benchmark when the library is present
// (full statistical harness), otherwise with a plain main() that times a
// fixed iteration count per kernel — so the binary always exists, always
// runs in CI smoke, and the kernels cannot bit-rot behind a missing
// dependency.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "corpus/workload.h"
#include "index/inverted_index.h"
#include "index/live/live_index.h"
#include "index/live/wal.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "toppriv/ghost_generator.h"
#include "util/filesystem.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace {

using namespace toppriv;

// Small shared world, built once (kept deliberately modest so the micro
// bench binary stays fast).
struct MicroWorld {
  corpus::Corpus corpus;
  corpus::GroundTruthModel truth;
  index::InvertedIndex index;
  topicmodel::LdaModel model;
  std::vector<corpus::BenchmarkQuery> workload;
  text::TermId hottest = 0;  // longest posting list
};

const MicroWorld& World() {
  static const MicroWorld* world = [] {
    auto* w = new MicroWorld();
    corpus::GeneratorParams params;
    params.num_docs = 800;
    params.mean_doc_length = 100;
    params.tail_vocab_size = 1500;
    w->corpus = corpus::CorpusGenerator(params).Generate(&w->truth);
    w->index = index::InvertedIndex::Build(w->corpus);
    topicmodel::TrainerOptions options;
    options.num_topics = 100;
    options.iterations = 40;
    w->model = topicmodel::GibbsTrainer(options).Train(w->corpus);
    corpus::WorkloadParams wp;
    wp.num_queries = 50;
    w->workload =
        corpus::WorkloadGenerator(w->corpus, w->truth, wp).Generate();
    for (text::TermId t = 0; t < w->index.num_terms(); ++t) {
      if (w->index.DocFreq(t) > w->index.DocFreq(w->hottest)) w->hottest = t;
    }
    return w;
  }();
  return *world;
}

// ----------------------------------------------------------- the kernels --
// Each returns a checksum so neither harness can dead-code-eliminate it.

uint64_t KernelIndexBuild() {
  const auto& world = World();
  index::InvertedIndex index = index::InvertedIndex::Build(world.corpus);
  return index.num_terms();
}

uint64_t KernelPostingIteratorScan() {
  // Posting-at-a-time Iterator walk of the hottest list (the seed's only
  // decode path; now a compatibility wrapper over block decoding).
  const auto& world = World();
  const index::PostingList& list = world.index.Postings(world.hottest);
  uint64_t sum = 0;
  for (auto it = list.begin(); it.Valid(); it.Next()) {
    sum += it.Get().doc + it.Get().tf;
  }
  return sum;
}

uint64_t KernelPostingBlockDecode() {
  // Block-batch decode of the hottest list: what the evaluators actually
  // run. Compare against KernelPostingIteratorScan for the batching win.
  const auto& world = World();
  const index::PostingList& list = world.index.Postings(world.hottest);
  index::PostingBlock block;
  uint64_t sum = 0;
  for (size_t b = 0; b < list.num_blocks(); ++b) {
    list.DecodeBlock(b, &block);
    for (uint32_t i = 0; i < block.count; ++i) {
      sum += block.docs[i] + block.tfs[i];
    }
  }
  return sum;
}

uint64_t KernelLiveIngest(size_t batch_size) {
  // Streams the whole corpus into a fresh LiveIndex in `batch_size`-doc
  // batches, publishing (Refresh) after each — the docs/s number the
  // serving layer's mixed read/write phase is bounded by. Small batches
  // pay per-publish snapshot rebuilds; large ones amortize them.
  const auto& world = World();
  index::live::LiveIndex live;
  live.EnsureTermSpace(world.corpus.vocabulary_size());
  index::live::StreamCorpus(world.corpus, 0, world.corpus.num_documents(),
                            batch_size, &live);
  return live.num_segments() + live.Acquire()->num_documents();
}

uint64_t KernelSegmentMerge() {
  // Ingest at 64-doc seals with tiered merging disabled, then ForceMerge
  // the ~13 segments into one. Compare against KernelLiveIngest to
  // isolate the merge cost from the ingest cost.
  const auto& world = World();
  index::live::LiveIndexOptions options;
  options.max_writer_docs = 64;
  options.merge_factor = 1000;  // no auto merges; the ForceMerge is timed
  index::live::LiveIndex live(options);
  live.EnsureTermSpace(world.corpus.vocabulary_size());
  index::live::StreamCorpus(world.corpus, 0, world.corpus.num_documents(),
                            world.corpus.num_documents(), &live);
  live.ForceMerge();
  return live.num_segments() + live.Acquire()->ComputeStats().total_postings;
}

uint64_t KernelWalAppend(size_t sync_every) {
  // Appends 2000 ingest-sized records to an in-memory WAL (the
  // fault-injecting file system doubles as an allocation-only backend so
  // this measures encode + CRC + append, not the disk), syncing every
  // `sync_every` records (0 = once at the end). Maps onto the durability
  // policies: 1 ~ kPerBatch, 16 ~ kPerRefresh at 16-doc batches, 0 ~
  // kManual — the records/s ceiling each policy pays for.
  constexpr size_t kRecords = 2000;
  util::FaultInjectingFileSystem fs;
  auto writer =
      index::live::WalWriter::Create(&fs, "bench-wal", /*generation=*/1,
                                     /*base_seq=*/0);
  if (!writer.ok()) return 0;
  index::live::WalRecord record;
  record.type = index::live::WalRecordType::kIngest;
  record.docs = {{1, 2, 3, 5, 8, 13, 21, 34}, {2, 7, 18, 28}};
  for (size_t i = 0; i < kRecords; ++i) {
    if (!(*writer)->Append(&record).ok()) return 0;
    if (sync_every != 0 && (i + 1) % sync_every == 0) {
      if (!(*writer)->Sync().ok()) return 0;
    }
  }
  if (!(*writer)->Sync().ok()) return 0;
  return (*writer)->next_seq();
}

uint64_t KernelIdleRefresh(size_t live_docs) {
  // Regression guard for the idle-Refresh WAL leak: a durable index with
  // `live_docs` single-doc segments takes 256 Refresh() calls with an
  // empty writer. Post-fix these log nothing and sync nothing (the
  // checksum folds in the file-system op delta, which must be zero), so
  // the time is ~flat in `live_docs`; pre-fix every call appended a seal
  // record and paid an fsync, growing the WAL without bound.
  util::FaultInjectingFileSystem fs;
  const auto& world = World();
  index::live::LiveIndexOptions options;
  options.max_writer_docs = 1;  // every doc seals its own segment
  options.merge_factor = 1000;  // keep them all: many-segment publishes
  options.durability = index::live::DurabilityPolicy::kPerRefresh;
  auto live = index::live::LiveIndex::Recover(&fs, "bench-live", options);
  if (!live.ok()) return 0;
  (*live)->EnsureTermSpace(world.corpus.vocabulary_size());
  std::vector<std::vector<text::TermId>> batch;
  for (size_t d = 0; d < live_docs; ++d) {
    batch.push_back(
        world.corpus.documents()[d % world.corpus.num_documents()].tokens);
  }
  (*live)->Ingest(batch);
  (*live)->Refresh();
  const uint64_t ops_before = fs.op_count();
  for (size_t i = 0; i < 256; ++i) (*live)->Refresh();
  return (*live)->Acquire()->num_documents() + (fs.op_count() - ops_before);
}

uint64_t KernelWalGroupCommit(size_t num_threads) {
  // Group-commit throughput: `num_threads` writers each ingest 64
  // single-doc batches under kPerBatch (every ack requires the record
  // durable before Ingest returns). Leader/follower syncing lets
  // concurrent writers share one fsync, so acked writes/s scales with the
  // writer count instead of serializing on the sync.
  constexpr size_t kWritesPerThread = 64;
  util::FaultInjectingFileSystem fs;
  const auto& world = World();
  index::live::LiveIndexOptions options;
  options.max_writer_docs = 8;
  options.merge_factor = 1000;
  options.durability = index::live::DurabilityPolicy::kPerBatch;
  auto live = index::live::LiveIndex::Recover(&fs, "bench-live", options);
  if (!live.ok()) return 0;
  (*live)->EnsureTermSpace(world.corpus.vocabulary_size());
  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < num_threads; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kWritesPerThread; ++i) {
        const auto& doc =
            world.corpus
                .documents()[(w * kWritesPerThread + i) %
                             world.corpus.num_documents()]
                .tokens;
        acked.fetch_add((*live)->Ingest({doc}).size(),
                        std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  (*live)->Refresh();
  return acked.load() + (*live)->Acquire()->num_documents();
}

uint64_t KernelQueryEvaluation(search::SearchEngine& engine, size_t* qi) {
  const auto& world = World();
  const auto& q = world.workload[*qi % world.workload.size()];
  ++*qi;
  return engine.Evaluate(q.term_ids, 10).size();
}

constexpr size_t kCounterOpsPerCall = 65536;

uint64_t KernelMetricsCounter() {
  // 64Ki striped-counter increments through the instrumentation macro —
  // the cost every enabled counter site pays. In a TOPPRIV_METRICS=OFF
  // build the macro vanishes and this times the bare checksum loop, so
  // the ON-vs-OFF delta IS the per-increment overhead.
  uint64_t sum = 0;
  for (size_t i = 0; i < kCounterOpsPerCall; ++i) {
    TOPPRIV_COUNTER_ADD("bench.metrics_counter", 1);
    sum += i & 7;
  }
  return sum;
}

uint64_t KernelInstrumentedQuery(search::SearchEngine& engine, size_t* qi) {
  // KernelQueryEvaluation plus the full per-query instrumentation set a
  // serving cycle attaches: one trace span and one latency histogram
  // observation. Compare against QueryEvaluation/maxscore — the delta is
  // what the <5% bench_compare gate bounds.
  TOPPRIV_TRACE_SPAN(span, "bench.query");
  TOPPRIV_SCOPED_TIMER_US("bench.query_latency_us");
  return KernelQueryEvaluation(engine, qi);
}

uint64_t KernelLdaInference(const topicmodel::LdaInferencer& inferencer,
                            size_t* qi) {
  const auto& world = World();
  const auto& q = world.workload[*qi % world.workload.size()];
  ++*qi;
  return inferencer.InferQuery(q.term_ids).size();
}

}  // namespace

#ifdef TOPPRIV_HAVE_BENCHMARK

#include <benchmark/benchmark.h>

namespace {

void BM_IndexBuild(benchmark::State& state) {
  const auto& world = World();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelIndexBuild());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world.corpus.total_tokens()));
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

void BM_PostingIteratorScan(benchmark::State& state) {
  const auto& world = World();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelPostingIteratorScan());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(world.index.Postings(world.hottest).size()));
}
BENCHMARK(BM_PostingIteratorScan);

void BM_PostingBlockDecode(benchmark::State& state) {
  const auto& world = World();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelPostingBlockDecode());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(world.index.Postings(world.hottest).size()));
}
BENCHMARK(BM_PostingBlockDecode);

void BM_LiveIngest(benchmark::State& state) {
  // Arg: ingest batch size; items/s is the docs/s ingest throughput.
  const auto& world = World();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        KernelLiveIngest(static_cast<size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world.corpus.num_documents()));
}
BENCHMARK(BM_LiveIngest)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_SegmentMerge(benchmark::State& state) {
  const auto& world = World();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelSegmentMerge());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world.corpus.num_documents()));
}
BENCHMARK(BM_SegmentMerge)->Unit(benchmark::kMillisecond);

void BM_WalAppend(benchmark::State& state) {
  // Arg: records per Sync (0 = one Sync at the end); items/s is the WAL's
  // records/s ceiling under that fsync cadence.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        KernelWalAppend(static_cast<size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_WalAppend)
    ->Arg(1)
    ->Arg(16)
    ->Arg(0)
    ->Unit(benchmark::kMicrosecond);

void BM_LiveRefresh(benchmark::State& state) {
  // Arg: live single-doc segments under the 256 idle Refresh calls. The
  // idle-Refresh fix makes this ~flat across args and across history;
  // items/s is idle refreshes per second.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        KernelIdleRefresh(static_cast<size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_LiveRefresh)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_WalGroupCommit(benchmark::State& state) {
  // Arg: concurrent kPerBatch writers; items/s is acked durable writes/s.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        KernelWalGroupCommit(static_cast<size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 64);
}
BENCHMARK(BM_WalGroupCommit)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_QueryEvaluation(benchmark::State& state) {
  // Arg 0: 0 = TAAT, 1 = MaxScore — the strategy comparison in one chart.
  const auto& world = World();
  search::SearchEngine engine(world.corpus, world.index,
                              search::MakeBm25Scorer(),
                              state.range(0) == 0
                                  ? search::EvalStrategy::kTAAT
                                  : search::EvalStrategy::kMaxScore);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelQueryEvaluation(engine, &qi));
  }
}
BENCHMARK(BM_QueryEvaluation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_MetricsCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelMetricsCounter());
  }
  // items/s = counter increments per second.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kCounterOpsPerCall));
}
BENCHMARK(BM_MetricsCounter)->Unit(benchmark::kMicrosecond);

void BM_InstrumentedQuery(benchmark::State& state) {
  const auto& world = World();
  search::SearchEngine engine(world.corpus, world.index,
                              search::MakeBm25Scorer(),
                              search::EvalStrategy::kMaxScore);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelInstrumentedQuery(engine, &qi));
  }
}
BENCHMARK(BM_InstrumentedQuery)->Unit(benchmark::kMicrosecond);

void BM_LdaInference(benchmark::State& state) {
  const auto& world = World();
  topicmodel::LdaInferencer inferencer(world.model);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelLdaInference(inferencer, &qi));
  }
}
BENCHMARK(BM_LdaInference)->Unit(benchmark::kMicrosecond);

void BM_GhostGeneration(benchmark::State& state) {
  const auto& world = World();
  topicmodel::LdaInferencer inferencer(world.model);
  core::PrivacySpec spec;
  spec.epsilon2 = static_cast<double>(state.range(0)) / 1000.0;
  core::GhostQueryGenerator generator(world.model, inferencer, spec);
  util::Rng rng(1);
  size_t qi = 0;
  double total_cycle_len = 0.0;
  size_t cycles = 0;
  for (auto _ : state) {
    const auto& q = world.workload[qi % world.workload.size()];
    core::QueryCycle cycle = generator.Protect(q.term_ids, &rng);
    benchmark::DoNotOptimize(cycle.length());
    total_cycle_len += static_cast<double>(cycle.length());
    ++cycles;
    ++qi;
  }
  state.counters["avg_cycle_len"] =
      cycles > 0 ? total_cycle_len / static_cast<double>(cycles) : 0.0;
}
BENCHMARK(BM_GhostGeneration)
    ->Arg(10)   // eps2 = 1%
    ->Arg(30)   // eps2 = 3%
    ->Unit(benchmark::kMillisecond);

void BM_GibbsTrainingSweep(benchmark::State& state) {
  const auto& world = World();
  topicmodel::TrainerOptions options;
  options.num_topics = static_cast<size_t>(state.range(0));
  options.iterations = 2;
  options.estimation_samples = 1;
  for (auto _ : state) {
    topicmodel::GibbsTrainer trainer(options);
    benchmark::DoNotOptimize(trainer.Train(world.corpus).num_topics());
  }
  state.SetItemsProcessed(
      state.iterations() * 2 *
      static_cast<int64_t>(world.corpus.total_tokens()));
}
BENCHMARK(BM_GibbsTrainingSweep)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

#else  // !TOPPRIV_HAVE_BENCHMARK

#include "util/io.h"
#include "util/json.h"

namespace {

struct KernelResult {
  std::string name;
  double ns_per_op = 0.0;
  size_t iters = 0;
};

std::vector<KernelResult>& Results() {
  static std::vector<KernelResult>* results = new std::vector<KernelResult>();
  return *results;
}

/// Poor-man's harness: runs `fn` `iters` times, prints mean ns/op. No
/// statistics, no warmup sophistication — enough to smoke the kernels and
/// eyeball regressions where Google Benchmark is unavailable.
template <typename Fn>
void RunKernel(const char* name, size_t iters, Fn&& fn) {
  uint64_t sink = 0;
  // One untimed warmup iteration (first touch builds lazy state).
  sink += fn();
  util::WallTimer timer;
  for (size_t i = 0; i < iters; ++i) sink += fn();
  double ns = timer.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
  std::printf("%-28s %10.0f ns/op   (iters=%zu, sink=%llu)\n", name, ns,
              iters, static_cast<unsigned long long>(sink));
  Results().push_back({name, ns, iters});
}

// Writes the run in Google Benchmark's --benchmark_out=json shape (a
// "benchmarks" array of {name, real_time, time_unit} objects) so
// tools/bench_compare.py reads either harness's sidecar identically.
void WriteJson(const std::string& path) {
  util::JsonWriter w;
  w.BeginObject();
  w.Key("context");
  w.BeginObject();
  w.Field("harness", "fallback");
  // Bumped when the emitted cell set changes; bench_compare.py warns
  // (never fails) when baseline and current disagree.
  w.Field("schema_version", static_cast<uint64_t>(2));
  w.EndObject();
  w.Key("benchmarks");
  w.BeginArray();
  for (const KernelResult& r : Results()) {
    w.BeginObject();
    w.Field("name", r.name);
    w.Field("run_type", "iteration");
    w.Field("iterations", static_cast<uint64_t>(r.iters));
    w.Field("real_time", r.ns_per_op);
    w.Field("cpu_time", r.ns_per_op);
    w.Field("time_unit", "ns");
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  util::Status status = util::WriteFile(path, w.str());
  if (!status.ok()) {
    std::fprintf(stderr, "micro_bench: writing %s failed: %s\n", path.c_str(),
                 status.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  std::printf(
      "micro_bench fallback harness (Google Benchmark not found at build "
      "time)\n\n");
  const auto& world = World();

  RunKernel("IndexBuild", 5, [] { return KernelIndexBuild(); });
  RunKernel("PostingIteratorScan", 2000,
            [] { return KernelPostingIteratorScan(); });
  RunKernel("PostingBlockDecode", 2000,
            [] { return KernelPostingBlockDecode(); });
  RunKernel("LiveIngest/batch1", 3, [] { return KernelLiveIngest(1); });
  RunKernel("LiveIngest/batch16", 3, [] { return KernelLiveIngest(16); });
  RunKernel("LiveIngest/batch128", 3, [] { return KernelLiveIngest(128); });
  RunKernel("SegmentMerge", 3, [] { return KernelSegmentMerge(); });
  RunKernel("WalAppend/sync1", 50, [] { return KernelWalAppend(1); });
  RunKernel("WalAppend/sync16", 50, [] { return KernelWalAppend(16); });
  RunKernel("WalAppend/syncEnd", 50, [] { return KernelWalAppend(0); });
  RunKernel("LiveRefresh/idle64", 10, [] { return KernelIdleRefresh(64); });
  RunKernel("LiveRefresh/idle256", 5, [] { return KernelIdleRefresh(256); });
  RunKernel("WalGroupCommit/threads1", 10,
            [] { return KernelWalGroupCommit(1); });
  RunKernel("WalGroupCommit/threads4", 10,
            [] { return KernelWalGroupCommit(4); });

  {
    search::SearchEngine engine(world.corpus, world.index,
                                search::MakeBm25Scorer());
    size_t qi = 0;
    RunKernel("QueryEvaluation/taat", 2000,
              [&] { return KernelQueryEvaluation(engine, &qi); });
  }
  {
    search::SearchEngine engine(world.corpus, world.index,
                                search::MakeBm25Scorer(),
                                search::EvalStrategy::kMaxScore);
    size_t qi = 0;
    RunKernel("QueryEvaluation/maxscore", 2000,
              [&] { return KernelQueryEvaluation(engine, &qi); });
  }
  RunKernel("MetricsCounter", 200, [] { return KernelMetricsCounter(); });
  {
    search::SearchEngine engine(world.corpus, world.index,
                                search::MakeBm25Scorer(),
                                search::EvalStrategy::kMaxScore);
    size_t qi = 0;
    RunKernel("InstrumentedQuery", 2000,
              [&] { return KernelInstrumentedQuery(engine, &qi); });
  }
  {
    topicmodel::LdaInferencer inferencer(world.model);
    size_t qi = 0;
    RunKernel("LdaInference", 200,
              [&] { return KernelLdaInference(inferencer, &qi); });
  }
  if (!json_path.empty()) WriteJson(json_path);
  return 0;
}

#endif  // TOPPRIV_HAVE_BENCHMARK
