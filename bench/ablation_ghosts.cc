// Ablation bench for the design choices DESIGN.md calls out:
//   1. Step 3c rejection test  (reject ghosts that fail to cut exposure)
//   2. Semantic coherence      (ghost words from ONE masking topic vs
//                               TrackMeNot-style uniform-random words)
//   3. Ghost length rule       (multiples of |qu| vs a short fixed length)
//
// Beyond the exposure/cycle metrics, each variant reports a *coherence*
// score: the mean over ghost queries of max_t Pr(t|qg). A realistic,
// semantically coherent query concentrates its posterior on one topic
// (Def. 3); a random-word ghost does not, which is exactly how an adversary
// dismisses TrackMeNot-style ghosts. Run at a tight epsilon2 so the
// rejection test actually fires.

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/fixture.h"
#include "topicmodel/inference.h"
#include "toppriv/ghost_generator.h"
#include "util/stats.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;

namespace {

struct AblationResult {
  double exposure_pct = 0.0;
  double mask_pct = 0.0;
  double cycle_length = 0.0;
  double rejections = 0.0;
  double ghost_coherence = 0.0;
  double user_coherence = 0.0;  // yardstick: coherence of genuine queries
  double satisfied = 0.0;
};

AblationResult RunVariant(ExperimentFixture& fixture, size_t num_topics,
                          const core::PrivacySpec& spec,
                          const core::GeneratorOptions& options) {
  const topicmodel::LdaModel& model = fixture.model(num_topics);
  topicmodel::LdaInferencer inferencer(model);
  core::GhostQueryGenerator generator(model, inferencer, spec, options);
  util::Rng rng(31337);

  util::OnlineStats exposure, mask, cycle_len, rejections, ghost_coh,
      user_coh;
  size_t satisfied = 0, counted = 0;
  for (const corpus::BenchmarkQuery& q : fixture.workload()) {
    core::QueryCycle cycle = generator.Protect(q.term_ids, &rng);
    exposure.Add(cycle.exposure_after * 100.0);
    mask.Add(cycle.mask_level * 100.0);
    cycle_len.Add(static_cast<double>(cycle.length()));
    rejections.Add(static_cast<double>(cycle.rejected_topics.size()));
    if (cycle.met_epsilon2) ++satisfied;
    ++counted;
    for (size_t i = 0; i < cycle.queries.size(); ++i) {
      std::vector<double> posterior =
          inferencer.InferQuery(cycle.queries[i]);
      double top = 0.0;
      for (double p : posterior) top = std::max(top, p);
      if (i == cycle.user_index) {
        user_coh.Add(top);
      } else {
        ghost_coh.Add(top);
      }
    }
  }

  AblationResult out;
  out.exposure_pct = exposure.mean();
  out.mask_pct = mask.mean();
  out.cycle_length = cycle_len.mean();
  out.rejections = rejections.mean();
  out.ghost_coherence = ghost_coh.mean();
  out.user_coherence = user_coh.mean();
  out.satisfied =
      counted > 0 ? static_cast<double>(satisfied) / counted : 0.0;
  return out;
}

}  // namespace

int main() {
  ExperimentFixture fixture;
  const size_t num_topics = 50;  // near the corpus true coverage, as Sec IV-B advises
  core::PrivacySpec spec;
  spec.epsilon1 = 0.05;
  spec.epsilon2 = 0.005;  // tight target: the rejection test matters here

  struct Variant {
    const char* name;
    core::GeneratorOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper algorithm", {}});
  {
    core::GeneratorOptions o;
    o.use_rejection_test = false;
    variants.push_back({"no rejection test (3c off)", o});
  }
  {
    core::GeneratorOptions o;
    o.coherent_ghosts = false;
    variants.push_back({"incoherent ghosts (random words)", o});
  }
  {
    core::GeneratorOptions o;
    o.fixed_ghost_length = 3;
    variants.push_back({"short fixed-length ghosts (3 words)", o});
  }

  util::TablePrinter table({"variant", "exposure(%)", "mask(%)", "cycle v",
                            "rejections", "ghost coher.", "met eps2"});
  double user_coherence = 0.0;
  for (const Variant& v : variants) {
    AblationResult r = RunVariant(fixture, num_topics, spec, v.options);
    user_coherence = r.user_coherence;
    table.AddRow({v.name, util::FormatDouble(r.exposure_pct, 3),
                  util::FormatDouble(r.mask_pct, 3),
                  util::FormatDouble(r.cycle_length, 2),
                  util::FormatDouble(r.rejections, 2),
                  util::FormatDouble(r.ghost_coherence, 3),
                  util::FormatDouble(r.satisfied, 2)});
    std::fprintf(stderr, "[ablation] %s done\n", v.name);
  }

  std::printf("\nGhost-generation ablations (LDA050, eps1=5%%, eps2=0.5%%)\n");
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\ngenuine-query coherence yardstick: %.3f (a realistic ghost should\n"
      "score comparably; TrackMeNot-style random-word ghosts score far\n"
      "lower and are dismissible on sight, Def. 3). Dropping the rejection\n"
      "test admits ineffective masking topics, inflating the cycle; short\n"
      "ghosts under-weigh their topic in the Eq. 2 mixture.\n",
      user_coherence);
  return 0;
}
