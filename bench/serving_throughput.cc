// Serving-layer throughput: runs N independent TopPriv user sessions
// through serving::SessionDriver and reports cycles/sec and queries/sec
// (the product metrics — the paper's Fig. 2d reports per-cycle generation
// time; a deployment must also sustain many users at once).
//
// The grid sweeps evaluation strategy × shard count × driver threads:
// strategy ∈ {taat, maxscore} (the PostingList-block MaxScore evaluator vs
// classic term-at-a-time), K ∈ {1, 2, 4} index shards (K = 1 is the
// monolithic SearchEngine, K > 1 a driver-shared ShardedSearchEngine
// fleet) at 1, 4 and hardware-concurrency worker threads. Session digests
// must be identical across EVERY cell — strategies AND thread counts AND
// shard counts — which is the serving-layer face of the bit-parity
// invariant.
//
// A second, retrieval-only phase replays the raw benchmark workload
// through each (strategy, shards) engine with no privacy layer in the
// loop, isolating the evaluator speedup the tentpole targets (in the
// session phase, ghost generation shares the wall clock and dilutes it).
//
// `--smoke` shrinks the fixture to a tiny corpus/model so CI can keep this
// binary from bit-rotting in a few seconds; explicit TOPPRIV_* environment
// variables still win over the smoke defaults. `--json <path>` emits the
// whole grid as a stable machine-readable summary (CI uploads it as
// BENCH_serving.json, the perf trajectory artifact).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "experiments/fixture.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "serving/session_driver.h"
#include "topicmodel/inference.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace toppriv;
using experiments::ExperimentFixture;

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

const search::EvalStrategy kStrategies[] = {search::EvalStrategy::kTAAT,
                                            search::EvalStrategy::kMaxScore};

struct ServingCell {
  search::EvalStrategy strategy;
  size_t shards = 0;
  size_t threads = 0;
  serving::ServingReport report;
  double generation_seconds = 0.0;
  uint64_t digest = 0;
};

struct RetrievalCell {
  search::EvalStrategy strategy;
  size_t shards = 0;
  size_t queries = 0;
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  uint64_t digest = 0;
};

uint64_t HashResults(uint64_t h, const std::vector<search::ScoredDoc>& docs) {
  for (const search::ScoredDoc& sd : docs) {
    h = util::Fnv1aStep(h, sd.doc);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(sd.score), "double is 64-bit");
    std::memcpy(&bits, &sd.score, sizeof(bits));
    h = util::Fnv1aStep(h, bits);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  if (smoke) {
    // Tiny corpus/model; pre-set env vars still take precedence.
    ::setenv("TOPPRIV_DOCS", "250", /*overwrite=*/0);
    ::setenv("TOPPRIV_DOC_LEN", "60", 0);
    ::setenv("TOPPRIV_TAIL_VOCAB", "500", 0);
    ::setenv("TOPPRIV_QUERIES", "24", 0);
    ::setenv("TOPPRIV_LDA_ITERS", "30", 0);
  }
  const size_t num_topics =
      EnvSize("TOPPRIV_SERVING_TOPICS", smoke ? 50 : 100);
  const size_t num_sessions =
      EnvSize("TOPPRIV_SERVING_SESSIONS", smoke ? 4 : 16);
  const size_t queries_per_session =
      EnvSize("TOPPRIV_SERVING_QPS", smoke ? 3 : 8);
  // Retrieval-only replay size (total query evaluations per cell).
  const size_t eval_target =
      EnvSize("TOPPRIV_EVAL_TARGET", smoke ? 3000 : 30000);

  ExperimentFixture fixture;
  const topicmodel::LdaModel& model = fixture.model(num_topics);
  topicmodel::LdaInferencer inferencer(model);

  // Cycle the benchmark workload so every session gets a full query stream.
  std::vector<std::vector<text::TermId>> queries;
  queries.reserve(num_sessions * queries_per_session);
  const auto& workload = fixture.workload();
  for (size_t i = 0; i < num_sessions * queries_per_session; ++i) {
    queries.push_back(workload[i % workload.size()].term_ids);
  }
  std::vector<serving::SessionWorkload> sessions =
      serving::DealSessions(queries, num_sessions);

  // Always run the 4-thread row, even on fewer cores: oversubscription
  // still exercises the pool path and the cross-thread-count determinism
  // check (the speedup column just reads ~1x there).
  const size_t hw = util::ThreadPool::HardwareConcurrency();
  std::vector<size_t> thread_counts = {1, 4};
  if (hw != 4 && hw != 1) thread_counts.push_back(hw);
  const std::vector<size_t> shard_counts = {1, 2, 4};

  // One engine (shard fleet) per strategy × shard count, shared by every
  // session at every driver thread count AND reused by the retrieval
  // replay below — the deployment shape: the fleet is a server resource,
  // sessions are traffic (and a MaxScore engine's impact-bound tables are
  // paid for once, not per phase). TOPPRIV_SHARD_THREADS>1 additionally
  // fans each query's shard evaluations out on the engine's private pool
  // (stacked parallelism; digests must stay identical).
  struct EngineCell {
    search::EvalStrategy strategy;
    size_t shards;
    std::unique_ptr<search::QueryEngine> engine;
  };
  std::vector<EngineCell> engines;
  for (search::EvalStrategy strategy : kStrategies) {
    for (size_t num_shards : shard_counts) {
      engines.push_back(EngineCell{
          strategy, num_shards,
          fixture.MakeEngine(search::MakeBm25Scorer(), num_shards,
                             fixture.config().shard_threads, strategy)});
    }
  }

  // ------------------------------------------------- session-driver phase --
  std::vector<ServingCell> serving_cells;
  uint64_t reference_digest = 0;
  bool have_reference = false;
  bool deterministic = true;
  double base_cps = 0.0;
  for (const EngineCell& ec : engines) {
    for (size_t threads : thread_counts) {
      serving::DriverOptions options;
      options.num_threads = threads;
      options.seed = 42;
      serving::SessionDriver driver(model, inferencer, *ec.engine, options);

      ServingCell cell;
      cell.strategy = ec.strategy;
      cell.shards = ec.shards;
      cell.threads = threads;
      cell.report = driver.Run(sessions);
      for (const serving::SessionStats& s : cell.report.sessions) {
        cell.digest ^= s.digest;
        cell.generation_seconds += s.generation_seconds;
      }
      if (!have_reference) {
        reference_digest = cell.digest;
        have_reference = true;
        base_cps = cell.report.cycles_per_second;
      } else if (cell.digest != reference_digest) {
        deterministic = false;
      }
      serving_cells.push_back(std::move(cell));
    }
  }

  // ---------------------------------------------- retrieval-only replay --
  const size_t reps =
      std::max<size_t>(1, eval_target / std::max<size_t>(1, workload.size()));
  std::vector<RetrievalCell> retrieval_cells;
  uint64_t eval_reference = 0;
  bool have_eval_reference = false;
  for (const EngineCell& ec : engines) {
    RetrievalCell cell;
    cell.strategy = ec.strategy;
    cell.shards = ec.shards;
    uint64_t digest = util::kFnv1aOffsetBasis;
    util::WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      for (const corpus::BenchmarkQuery& q : workload) {
        std::vector<search::ScoredDoc> results =
            ec.engine->Evaluate(q.term_ids, 10);
        // Digest every pass identically so reps do not mask divergence.
        digest = HashResults(digest, results);
        ++cell.queries;
      }
    }
    cell.wall_seconds = timer.ElapsedSeconds();
    cell.digest = digest;
    cell.queries_per_second =
        cell.wall_seconds > 0.0
            ? static_cast<double>(cell.queries) / cell.wall_seconds
            : 0.0;
    if (!have_eval_reference) {
      eval_reference = digest;
      have_eval_reference = true;
    } else if (digest != eval_reference) {
      deterministic = false;
    }
    retrieval_cells.push_back(cell);
  }

  // MaxScore-vs-TAAT evaluator speedup at each shard count (the tentpole's
  // headline number at K = 1).
  auto eval_qps = [&](search::EvalStrategy strategy, size_t shards) {
    for (const RetrievalCell& c : retrieval_cells) {
      if (c.strategy == strategy && c.shards == shards) {
        return c.queries_per_second;
      }
    }
    return 0.0;
  };
  const double maxscore_speedup =
      eval_qps(search::EvalStrategy::kTAAT, 1) > 0.0
          ? eval_qps(search::EvalStrategy::kMaxScore, 1) /
                eval_qps(search::EvalStrategy::kTAAT, 1)
          : 0.0;

  // ------------------------------------------------------------- reports --
  util::TablePrinter table({"strategy", "shards", "threads", "sessions",
                            "cycles", "queries", "wall(s)", "cycles/s",
                            "queries/s", "gen_ms/cyc", "speedup"});
  for (const ServingCell& cell : serving_cells) {
    table.AddRow(
        {search::EvalStrategyName(cell.strategy), std::to_string(cell.shards),
         std::to_string(cell.threads),
         std::to_string(cell.report.sessions.size()),
         std::to_string(cell.report.total_cycles),
         std::to_string(cell.report.total_queries),
         util::FormatDouble(cell.report.wall_seconds, 2),
         util::FormatDouble(cell.report.cycles_per_second, 1),
         util::FormatDouble(cell.report.queries_per_second, 1),
         util::FormatDouble(
             cell.report.total_cycles > 0
                 ? 1e3 * cell.generation_seconds /
                       static_cast<double>(cell.report.total_cycles)
                 : 0.0,
             2),
         util::FormatDouble(base_cps > 0.0
                                ? cell.report.cycles_per_second / base_cps
                                : 0.0,
                            2) +
             "x"});
  }

  util::TablePrinter eval_table(
      {"strategy", "shards", "queries", "wall(s)", "eval_queries/s", "vs_taat"});
  for (const RetrievalCell& cell : retrieval_cells) {
    double taat = eval_qps(search::EvalStrategy::kTAAT, cell.shards);
    eval_table.AddRow(
        {search::EvalStrategyName(cell.strategy), std::to_string(cell.shards),
         std::to_string(cell.queries),
         util::FormatDouble(cell.wall_seconds, 2),
         util::FormatDouble(cell.queries_per_second, 1),
         util::FormatDouble(taat > 0.0 ? cell.queries_per_second / taat : 0.0,
                            2) +
             "x"});
  }

  std::printf(
      "\nServing throughput (%s), %zu-topic model, hardware threads: %zu\n",
      smoke ? "smoke" : "full", num_topics, hw);
  std::printf("%s", table.ToString().c_str());
  std::printf("\nRetrieval-only replay (k=10, %zu passes over the workload)\n",
              reps);
  std::printf("%s", eval_table.ToString().c_str());
  std::printf(
      "\nsession+retrieval digests identical across strategy AND shard AND\n"
      "thread counts: %s\nmaxscore evaluator speedup vs taat (K=1): %.2fx\n"
      "\npaper claims to check: Fig. 2d puts per-cycle generation around a\n"
      "second at full scale on 2008-era hardware; the serving target here is\n"
      ">=2x cycles/s at 4 threads vs 1 (needs a >=4-core machine — sessions\n"
      "are embarrassingly parallel, so scaling is linear until the memory\n"
      "bus saturates). Neither sharding nor the evaluation strategy may\n"
      "change a single result bit: the digest check above IS the paper's\n"
      "no-fidelity-loss invariant, held across the distribution boundary\n"
      "and the MaxScore pruning logic.\n",
      deterministic ? "yes" : "NO (bug!)", maxscore_speedup);

  if (!json_path.empty()) {
    util::JsonWriter json;
    json.BeginObject();
    json.Field("bench", "serving_throughput");
    json.Field("mode", smoke ? "smoke" : "full");
    json.Field("num_topics", static_cast<uint64_t>(num_topics));
    json.Field("hardware_threads", static_cast<uint64_t>(hw));
    json.Field("deterministic", deterministic);
    json.Field("maxscore_eval_speedup_k1", maxscore_speedup);
    json.Key("serving_cells");
    json.BeginArray();
    for (const ServingCell& cell : serving_cells) {
      json.BeginObject();
      json.Field("strategy", search::EvalStrategyName(cell.strategy));
      json.Field("shards", static_cast<uint64_t>(cell.shards));
      json.Field("threads", static_cast<uint64_t>(cell.threads));
      json.Field("sessions",
                 static_cast<uint64_t>(cell.report.sessions.size()));
      json.Field("cycles", static_cast<uint64_t>(cell.report.total_cycles));
      json.Field("queries", static_cast<uint64_t>(cell.report.total_queries));
      json.Field("wall_seconds", cell.report.wall_seconds);
      json.Field("cycles_per_second", cell.report.cycles_per_second);
      json.Field("queries_per_second", cell.report.queries_per_second);
      json.Field("generation_ms_per_cycle",
                 cell.report.total_cycles > 0
                     ? 1e3 * cell.generation_seconds /
                           static_cast<double>(cell.report.total_cycles)
                     : 0.0);
      json.Field("digest", util::StrFormat("%016llx",
                                           static_cast<unsigned long long>(
                                               cell.digest)));
      json.EndObject();
    }
    json.EndArray();
    json.Key("retrieval_cells");
    json.BeginArray();
    for (const RetrievalCell& cell : retrieval_cells) {
      json.BeginObject();
      json.Field("strategy", search::EvalStrategyName(cell.strategy));
      json.Field("shards", static_cast<uint64_t>(cell.shards));
      json.Field("queries", static_cast<uint64_t>(cell.queries));
      json.Field("wall_seconds", cell.wall_seconds);
      json.Field("queries_per_second", cell.queries_per_second);
      json.Field("digest", util::StrFormat("%016llx",
                                           static_cast<unsigned long long>(
                                               cell.digest)));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    util::Status status = util::WriteFile(json_path, json.str() + "\n");
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return deterministic ? 0 : 1;
}
