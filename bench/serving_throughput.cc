// Serving-layer throughput: runs N independent TopPriv user sessions
// through serving::SessionDriver and reports cycles/sec and queries/sec
// (the product metrics — the paper's Fig. 2d reports per-cycle generation
// time; a deployment must also sustain many users at once).
//
// The grid sweeps shard count × driver threads: K ∈ {1, 2, 4} index shards
// (K = 1 is the monolithic SearchEngine, K > 1 a driver-shared
// ShardedSearchEngine fleet) at 1, 4 and hardware-concurrency worker
// threads. Session digests must be identical across EVERY cell — thread
// counts AND shard counts — which is the serving-layer face of the
// sharding parity invariant.
//
// `--smoke` shrinks the fixture to a tiny corpus/model so CI can keep this
// binary from bit-rotting in a few seconds; explicit TOPPRIV_* environment
// variables still win over the smoke defaults.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "experiments/fixture.h"
#include "search/engine.h"
#include "search/scorer.h"
#include "serving/session_driver.h"
#include "topicmodel/inference.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace toppriv;
using experiments::ExperimentFixture;

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  if (smoke) {
    // Tiny corpus/model; pre-set env vars still take precedence.
    ::setenv("TOPPRIV_DOCS", "250", /*overwrite=*/0);
    ::setenv("TOPPRIV_DOC_LEN", "60", 0);
    ::setenv("TOPPRIV_TAIL_VOCAB", "500", 0);
    ::setenv("TOPPRIV_QUERIES", "24", 0);
    ::setenv("TOPPRIV_LDA_ITERS", "30", 0);
  }
  const size_t num_topics =
      EnvSize("TOPPRIV_SERVING_TOPICS", smoke ? 50 : 100);
  const size_t num_sessions =
      EnvSize("TOPPRIV_SERVING_SESSIONS", smoke ? 4 : 16);
  const size_t queries_per_session =
      EnvSize("TOPPRIV_SERVING_QPS", smoke ? 3 : 8);

  ExperimentFixture fixture;
  const topicmodel::LdaModel& model = fixture.model(num_topics);
  topicmodel::LdaInferencer inferencer(model);

  // Cycle the benchmark workload so every session gets a full query stream.
  std::vector<std::vector<text::TermId>> queries;
  queries.reserve(num_sessions * queries_per_session);
  const auto& workload = fixture.workload();
  for (size_t i = 0; i < num_sessions * queries_per_session; ++i) {
    queries.push_back(workload[i % workload.size()].term_ids);
  }
  std::vector<serving::SessionWorkload> sessions =
      serving::DealSessions(queries, num_sessions);

  // Always run the 4-thread row, even on fewer cores: oversubscription
  // still exercises the pool path and the cross-thread-count determinism
  // check (the speedup column just reads ~1x there).
  const size_t hw = util::ThreadPool::HardwareConcurrency();
  std::vector<size_t> thread_counts = {1, 4};
  if (hw != 4 && hw != 1) thread_counts.push_back(hw);
  const std::vector<size_t> shard_counts = {1, 2, 4};

  util::TablePrinter table({"shards", "threads", "sessions", "cycles",
                            "queries", "wall(s)", "cycles/s", "queries/s",
                            "gen_ms/cyc", "speedup"});
  double base_cps = 0.0;
  uint64_t reference_digest = 0;
  bool have_reference = false;
  bool deterministic = true;
  for (size_t num_shards : shard_counts) {
    // One engine (shard fleet) per K, shared by every session at every
    // driver thread count — the deployment shape: the fleet is a server
    // resource, sessions are traffic. TOPPRIV_SHARD_THREADS>1 additionally
    // fans each query's shard evaluations out on the engine's private pool
    // (stacked parallelism; digests must stay identical).
    std::unique_ptr<search::QueryEngine> engine = fixture.MakeEngine(
        search::MakeBm25Scorer(), num_shards, fixture.config().shard_threads);
    for (size_t threads : thread_counts) {
      serving::DriverOptions options;
      options.num_threads = threads;
      options.seed = 42;
      serving::SessionDriver driver(model, inferencer, *engine, options);
      serving::ServingReport report = driver.Run(sessions);

      uint64_t digest = 0;
      double gen_seconds = 0.0;
      for (const serving::SessionStats& s : report.sessions) {
        digest ^= s.digest;
        gen_seconds += s.generation_seconds;
      }
      if (!have_reference) {
        reference_digest = digest;
        have_reference = true;
        base_cps = report.cycles_per_second;
      } else if (digest != reference_digest) {
        deterministic = false;
      }

      table.AddRow(
          {std::to_string(num_shards), std::to_string(threads),
           std::to_string(report.sessions.size()),
           std::to_string(report.total_cycles),
           std::to_string(report.total_queries),
           util::FormatDouble(report.wall_seconds, 2),
           util::FormatDouble(report.cycles_per_second, 1),
           util::FormatDouble(report.queries_per_second, 1),
           util::FormatDouble(report.total_cycles > 0
                                  ? 1e3 * gen_seconds /
                                        static_cast<double>(report.total_cycles)
                                  : 0.0,
                              2),
           util::FormatDouble(base_cps > 0.0
                                  ? report.cycles_per_second / base_cps
                                  : 0.0,
                              2) +
               "x"});
    }
  }

  std::printf(
      "\nServing throughput (%s), %zu-topic model, hardware threads: %zu\n",
      smoke ? "smoke" : "full", num_topics, hw);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nsession digests identical across shard AND thread counts: %s\n"
      "\npaper claims to check: Fig. 2d puts per-cycle generation around a\n"
      "second at full scale on 2008-era hardware; the serving target here is\n"
      ">=2x cycles/s at 4 threads vs 1 (needs a >=4-core machine — sessions\n"
      "are embarrassingly parallel, so scaling is linear until the memory\n"
      "bus saturates). Sharding must not change a single result bit: the\n"
      "digest check above IS the paper's no-fidelity-loss invariant, held\n"
      "across the distribution boundary.\n",
      deterministic ? "yes" : "NO (bug!)");
  return deterministic ? 0 : 1;
}
