// Serving-layer throughput: runs N independent TopPriv user sessions
// through serving::SessionDriver and reports cycles/sec and queries/sec
// (the product metrics — the paper's Fig. 2d reports per-cycle generation
// time; a deployment must also sustain many users at once).
//
// The grid sweeps evaluation strategy × shard count × driver threads:
// strategy ∈ {taat, maxscore} (the PostingList-block MaxScore evaluator vs
// classic term-at-a-time), K ∈ {1, 2, 4} index shards (K = 1 is the
// monolithic SearchEngine, K > 1 a driver-shared ShardedSearchEngine
// fleet) at 1, 4 and hardware-concurrency worker threads. Session digests
// must be identical across EVERY cell — strategies AND thread counts AND
// shard counts — which is the serving-layer face of the bit-parity
// invariant.
//
// A second, retrieval-only phase replays the raw benchmark workload
// through each (strategy, shards) engine with no privacy layer in the
// loop, isolating the evaluator speedup the tentpole targets (in the
// session phase, ghost generation shares the wall clock and dilutes it).
//
// A third, mixed read/write phase runs the session fleet over a
// LiveSearchEngine while a writer thread streams the rest of the corpus
// into the LiveIndex (TOPPRIV_LIVE_INGEST = fraction ingested up-front,
// default 0.5) with background merges on a shared pool — the dynamic
// corpus under live query load the static engines cannot model. Mid-run
// results are snapshot-timing-dependent by nature, so the phase's gate is
// CONVERGENCE: after ingest completes, a workload replay over the live
// engine must produce the bit-identical digest of the static K=1 engine
// replay; a mismatch fails the binary (and with it the CI perf-smoke
// step).
//
// `--smoke` shrinks the fixture to a tiny corpus/model so CI can keep this
// binary from bit-rotting in a few seconds; explicit TOPPRIV_* environment
// variables still win over the smoke defaults. `--json <path>` emits the
// whole grid as a stable machine-readable summary (CI uploads it as
// BENCH_serving.json, the perf trajectory artifact).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "experiments/fixture.h"
#include "index/live/live_index.h"
#include "search/engine.h"
#include "search/live_engine.h"
#include "search/scorer.h"
#include "serving/session_driver.h"
#include "topicmodel/inference.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

using namespace toppriv;
using experiments::ExperimentFixture;

namespace {

/// Version of this binary's --json document layout. Bump when cells gain,
/// lose or rename fields; tools/bench_compare.py warns (never fails) on
/// skew against the committed baseline.
constexpr uint64_t kJsonSchemaVersion = 2;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

const search::EvalStrategy kStrategies[] = {search::EvalStrategy::kTAAT,
                                            search::EvalStrategy::kMaxScore};

struct ServingCell {
  search::EvalStrategy strategy;
  size_t shards = 0;
  size_t threads = 0;
  serving::ServingReport report;
  double generation_seconds = 0.0;
  uint64_t digest = 0;
};

struct RetrievalCell {
  search::EvalStrategy strategy;
  size_t shards = 0;
  size_t queries = 0;
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  uint64_t digest = 0;
};

struct LiveCell {
  search::EvalStrategy strategy;
  size_t threads = 0;
  size_t eval_threads = 1;
  size_t upfront_docs = 0;
  size_t streamed_docs = 0;
  double ingest_wall_seconds = 0.0;
  double ingest_docs_per_second = 0.0;
  size_t final_segments = 0;
  serving::ServingReport report;
  bool parity_with_static = false;
};

struct OpenLoopCell {
  search::EvalStrategy strategy;
  /// "under" (0.5x measured closed-loop capacity) or "over" (4x).
  const char* load = "under";
  double arrival_qps = 0.0;
  serving::OpenLoopReport report;
};

uint64_t HashResults(uint64_t h, const std::vector<search::ScoredDoc>& docs) {
  for (const search::ScoredDoc& sd : docs) {
    h = util::Fnv1aStep(h, sd.doc);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(sd.score), "double is 64-bit");
    std::memcpy(&bits, &sd.score, sizeof(bits));
    h = util::Fnv1aStep(h, bits);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json <path>] [--trace-out=<path>]\n",
                   argv[0]);
      return 2;
    }
  }
  // Spans record only while a global sink is installed; without
  // --trace-out every TOPPRIV_TRACE_SPAN stays inert (null sink).
  std::unique_ptr<util::TraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<util::TraceSink>(/*capacity=*/8192);
    util::TraceSink::SetGlobal(trace_sink.get());
  }
  if (smoke) {
    // Tiny corpus/model; pre-set env vars still take precedence.
    ::setenv("TOPPRIV_DOCS", "250", /*overwrite=*/0);
    ::setenv("TOPPRIV_DOC_LEN", "60", 0);
    ::setenv("TOPPRIV_TAIL_VOCAB", "500", 0);
    ::setenv("TOPPRIV_QUERIES", "24", 0);
    ::setenv("TOPPRIV_LDA_ITERS", "30", 0);
  }
  const size_t num_topics =
      EnvSize("TOPPRIV_SERVING_TOPICS", smoke ? 50 : 100);
  const size_t num_sessions =
      EnvSize("TOPPRIV_SERVING_SESSIONS", smoke ? 4 : 16);
  const size_t queries_per_session =
      EnvSize("TOPPRIV_SERVING_QPS", smoke ? 3 : 8);
  // Retrieval-only replay size (total query evaluations per cell).
  const size_t eval_target =
      EnvSize("TOPPRIV_EVAL_TARGET", smoke ? 3000 : 30000);

  ExperimentFixture fixture;
  const topicmodel::LdaModel& model = fixture.model(num_topics);
  topicmodel::LdaInferencer inferencer(model);

  // Cycle the benchmark workload so every session gets a full query stream.
  std::vector<std::vector<text::TermId>> queries;
  queries.reserve(num_sessions * queries_per_session);
  const auto& workload = fixture.workload();
  for (size_t i = 0; i < num_sessions * queries_per_session; ++i) {
    queries.push_back(workload[i % workload.size()].term_ids);
  }
  std::vector<serving::SessionWorkload> sessions =
      serving::DealSessions(queries, num_sessions);

  // Always run the 4-thread row, even on fewer cores: oversubscription
  // still exercises the pool path and the cross-thread-count determinism
  // check (the speedup column just reads ~1x there).
  const size_t hw = util::ThreadPool::HardwareConcurrency();
  std::vector<size_t> thread_counts = {1, 4};
  if (hw != 4 && hw != 1) thread_counts.push_back(hw);
  const std::vector<size_t> shard_counts = {1, 2, 4};

  // One engine (shard fleet) per strategy × shard count, shared by every
  // session at every driver thread count AND reused by the retrieval
  // replay below — the deployment shape: the fleet is a server resource,
  // sessions are traffic (and a MaxScore engine's impact-bound tables are
  // paid for once, not per phase). TOPPRIV_SHARD_THREADS>1 additionally
  // fans each query's shard evaluations out on the engine's private pool
  // (stacked parallelism; digests must stay identical).
  struct EngineCell {
    search::EvalStrategy strategy;
    size_t shards;
    std::unique_ptr<search::QueryEngine> engine;
  };
  std::vector<EngineCell> engines;
  for (search::EvalStrategy strategy : kStrategies) {
    for (size_t num_shards : shard_counts) {
      engines.push_back(EngineCell{
          strategy, num_shards,
          fixture.MakeEngine(search::MakeBm25Scorer(), num_shards,
                             fixture.config().shard_threads, strategy)});
    }
  }

  // ------------------------------------------------- session-driver phase --
  std::vector<ServingCell> serving_cells;
  uint64_t reference_digest = 0;
  bool have_reference = false;
  bool deterministic = true;
  double base_cps = 0.0;
  for (const EngineCell& ec : engines) {
    for (size_t threads : thread_counts) {
      serving::DriverOptions options;
      options.num_threads = threads;
      options.seed = 42;
      serving::SessionDriver driver(model, inferencer, *ec.engine, options);

      ServingCell cell;
      cell.strategy = ec.strategy;
      cell.shards = ec.shards;
      cell.threads = threads;
      cell.report = driver.Run(sessions);
      for (const serving::SessionStats& s : cell.report.sessions) {
        cell.digest ^= s.digest;
        cell.generation_seconds += s.generation_seconds;
      }
      if (!have_reference) {
        reference_digest = cell.digest;
        have_reference = true;
        base_cps = cell.report.cycles_per_second;
      } else if (cell.digest != reference_digest) {
        deterministic = false;
      }
      serving_cells.push_back(std::move(cell));
    }
  }

  // ---------------------------------------------- retrieval-only replay --
  const size_t reps =
      std::max<size_t>(1, eval_target / std::max<size_t>(1, workload.size()));
  std::vector<RetrievalCell> retrieval_cells;
  uint64_t eval_reference = 0;
  bool have_eval_reference = false;
  for (const EngineCell& ec : engines) {
    RetrievalCell cell;
    cell.strategy = ec.strategy;
    cell.shards = ec.shards;
    uint64_t digest = util::kFnv1aOffsetBasis;
    util::WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      for (const corpus::BenchmarkQuery& q : workload) {
        std::vector<search::ScoredDoc> results =
            ec.engine->Evaluate(q.term_ids, 10);
        // Digest every pass identically so reps do not mask divergence.
        digest = HashResults(digest, results);
        ++cell.queries;
      }
    }
    cell.wall_seconds = timer.ElapsedSeconds();
    cell.digest = digest;
    cell.queries_per_second =
        cell.wall_seconds > 0.0
            ? static_cast<double>(cell.queries) / cell.wall_seconds
            : 0.0;
    if (!have_eval_reference) {
      eval_reference = digest;
      have_eval_reference = true;
    } else if (digest != eval_reference) {
      deterministic = false;
    }
    retrieval_cells.push_back(cell);
  }

  // ---------------------------------------------- mixed read/write phase --
  // Sessions serve over a LiveSearchEngine while a writer streams the
  // remaining corpus in; background merges run on a shared two-worker
  // pool. After convergence the live replay digest must equal the static
  // K=1 replay digest of the same strategy, bit for bit.
  const double upfront_fraction = fixture.config().live_ingest_upfront;
  const size_t corpus_docs = fixture.corpus().num_documents();
  std::vector<LiveCell> live_cells;
  bool live_parity = true;
  auto static_replay_digest = [&](search::EvalStrategy strategy) {
    for (const EngineCell& ec : engines) {
      if (ec.strategy != strategy || ec.shards != 1) continue;
      uint64_t digest = util::kFnv1aOffsetBasis;
      for (const corpus::BenchmarkQuery& q : workload) {
        digest = HashResults(digest, ec.engine->Evaluate(q.term_ids, 10));
      }
      return digest;
    }
    return uint64_t{0};
  };
  size_t live_eval_threads = fixture.config().live_eval_threads;
  if (live_eval_threads == 0) live_eval_threads = hw;
  for (search::EvalStrategy strategy : kStrategies) {
    const uint64_t want_digest = static_replay_digest(strategy);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      util::ThreadPool merge_pool(2);
      index::live::LiveIndexOptions live_options;
      live_options.max_writer_docs = 64;
      live_options.merge_pool = &merge_pool;
      std::unique_ptr<index::live::LiveIndex> live =
          fixture.MakeLiveIndex(upfront_fraction, live_options);
      // The engine's per-query segment fan-out needs its own pool: driver
      // workers BLOCK inside ParallelFor, so handing them the driver's (or
      // merge) pool would deadlock. Declared before the engine so it
      // outlives it. Parity is unaffected — the fan-out is bit-identical
      // to the sequential scatter by the determinism argument in
      // live_engine.h, and the convergence digest below proves it per run.
      std::unique_ptr<util::ThreadPool> eval_pool;
      if (live_eval_threads > 1) {
        eval_pool = std::make_unique<util::ThreadPool>(live_eval_threads);
      }
      search::LiveSearchEngine engine(fixture.corpus(), *live,
                                      search::MakeBm25Scorer(), strategy,
                                      eval_pool.get());

      LiveCell cell;
      cell.strategy = strategy;
      cell.threads = threads;
      cell.eval_threads = live_eval_threads;
      cell.upfront_docs = live->Acquire()->num_documents();
      cell.streamed_docs = corpus_docs - cell.upfront_docs;

      serving::DriverOptions options;
      options.num_threads = threads;
      options.seed = 42;
      serving::SessionDriver driver(model, inferencer, engine, options);

      std::thread writer([&] {
        util::WallTimer ingest_timer;
        index::live::StreamCorpus(fixture.corpus(), cell.upfront_docs,
                                  corpus_docs, /*batch_size=*/32, live.get());
        cell.ingest_wall_seconds = ingest_timer.ElapsedSeconds();
      });
      cell.report = driver.Run(sessions);  // races the writer by design
      writer.join();
      live->WaitForMerges();
      live->Refresh();
      cell.final_segments = live->num_segments();
      cell.ingest_docs_per_second =
          cell.ingest_wall_seconds > 0.0
              ? static_cast<double>(cell.streamed_docs) /
                    cell.ingest_wall_seconds
              : 0.0;

      uint64_t got_digest = util::kFnv1aOffsetBasis;
      for (const corpus::BenchmarkQuery& q : workload) {
        got_digest = HashResults(got_digest, engine.Evaluate(q.term_ids, 10));
      }
      cell.parity_with_static = got_digest == want_digest;
      live_parity = live_parity && cell.parity_with_static;
      live_cells.push_back(std::move(cell));
    }
  }

  // --------------------------------------------------- open-loop phase --
  // Arrival-driven load against the K=1 engine of each strategy at 4
  // driver threads. Rates are set RELATIVE to the closed-loop capacity
  // measured above (same machine, same run), so "under" genuinely
  // underloads and "over" genuinely overloads on any hardware: under 0.5x
  // capacity nothing should shed; at 4x capacity the admission gate must
  // shed hard while latency stays bounded by the queue cap instead of
  // growing without limit.
  const size_t open_arrivals =
      EnvSize("TOPPRIV_OPENLOOP_ARRIVALS", smoke ? 120 : 600);
  std::vector<OpenLoopCell> open_loop_cells;
  auto closed_loop_cps = [&](search::EvalStrategy strategy) {
    for (const ServingCell& c : serving_cells) {
      if (c.strategy == strategy && c.shards == 1 && c.threads == 4) {
        return c.report.cycles_per_second;
      }
    }
    return 0.0;
  };
  for (const EngineCell& ec : engines) {
    if (ec.shards != 1) continue;
    const double capacity = closed_loop_cps(ec.strategy);
    const double base_rate = capacity > 0.0 ? capacity : 50.0;
    serving::DriverOptions options;
    options.num_threads = 4;
    options.seed = 42;
    serving::SessionDriver driver(model, inferencer, *ec.engine, options);
    for (const bool overload : {false, true}) {
      serving::OpenLoopOptions open;
      open.arrival_qps = overload ? 4.0 * base_rate : 0.5 * base_rate;
      open.num_arrivals = open_arrivals;
      open.deadline_seconds = 5.0;  // generous: a tripped deadline is news
      open.admission.max_in_flight = 4;
      open.admission.max_queue_depth = 8;
      open.admission.degraded_watermark = 0.75;
      OpenLoopCell cell;
      cell.strategy = ec.strategy;
      cell.load = overload ? "over" : "under";
      cell.arrival_qps = open.arrival_qps;
      cell.report = driver.RunOpenLoop(sessions, open);
      open_loop_cells.push_back(cell);
    }
  }

  // MaxScore-vs-TAAT evaluator speedup at each shard count (the tentpole's
  // headline number at K = 1).
  auto eval_qps = [&](search::EvalStrategy strategy, size_t shards) {
    for (const RetrievalCell& c : retrieval_cells) {
      if (c.strategy == strategy && c.shards == shards) {
        return c.queries_per_second;
      }
    }
    return 0.0;
  };
  const double maxscore_speedup =
      eval_qps(search::EvalStrategy::kTAAT, 1) > 0.0
          ? eval_qps(search::EvalStrategy::kMaxScore, 1) /
                eval_qps(search::EvalStrategy::kTAAT, 1)
          : 0.0;

  // ------------------------------------------------------------- reports --
  util::TablePrinter table({"strategy", "shards", "threads", "sessions",
                            "cycles", "queries", "wall(s)", "cycles/s",
                            "queries/s", "gen_ms/cyc", "speedup"});
  for (const ServingCell& cell : serving_cells) {
    table.AddRow(
        {search::EvalStrategyName(cell.strategy), std::to_string(cell.shards),
         std::to_string(cell.threads),
         std::to_string(cell.report.sessions.size()),
         std::to_string(cell.report.total_cycles),
         std::to_string(cell.report.total_queries),
         util::FormatDouble(cell.report.wall_seconds, 2),
         util::FormatDouble(cell.report.cycles_per_second, 1),
         util::FormatDouble(cell.report.queries_per_second, 1),
         util::FormatDouble(
             cell.report.total_cycles > 0
                 ? 1e3 * cell.generation_seconds /
                       static_cast<double>(cell.report.total_cycles)
                 : 0.0,
             2),
         util::FormatDouble(base_cps > 0.0
                                ? cell.report.cycles_per_second / base_cps
                                : 0.0,
                            2) +
             "x"});
  }

  util::TablePrinter eval_table(
      {"strategy", "shards", "queries", "wall(s)", "eval_queries/s", "vs_taat"});
  for (const RetrievalCell& cell : retrieval_cells) {
    double taat = eval_qps(search::EvalStrategy::kTAAT, cell.shards);
    eval_table.AddRow(
        {search::EvalStrategyName(cell.strategy), std::to_string(cell.shards),
         std::to_string(cell.queries),
         util::FormatDouble(cell.wall_seconds, 2),
         util::FormatDouble(cell.queries_per_second, 1),
         util::FormatDouble(taat > 0.0 ? cell.queries_per_second / taat : 0.0,
                            2) +
             "x"});
  }

  util::TablePrinter live_table({"strategy", "threads", "eval_thr", "upfront",
                                 "streamed", "ingest_docs/s", "cycles/s",
                                 "queries/s", "segments", "parity"});
  for (const LiveCell& cell : live_cells) {
    live_table.AddRow(
        {search::EvalStrategyName(cell.strategy), std::to_string(cell.threads),
         std::to_string(cell.eval_threads),
         std::to_string(cell.upfront_docs), std::to_string(cell.streamed_docs),
         util::FormatDouble(cell.ingest_docs_per_second, 1),
         util::FormatDouble(cell.report.cycles_per_second, 1),
         util::FormatDouble(cell.report.queries_per_second, 1),
         std::to_string(cell.final_segments),
         cell.parity_with_static ? "ok" : "MISMATCH"});
  }

  std::printf(
      "\nServing throughput (%s), %zu-topic model, hardware threads: %zu\n",
      smoke ? "smoke" : "full", num_topics, hw);
  std::printf("%s", table.ToString().c_str());
  std::printf("\nRetrieval-only replay (k=10, %zu passes over the workload)\n",
              reps);
  std::printf("%s", eval_table.ToString().c_str());
  std::printf(
      "\nMixed read/write phase (live ingest, %.0f%% up-front, batch 32,\n"
      "background merges on 2 workers; parity = post-convergence replay\n"
      "digest equals the static K=1 engine's)\n",
      100.0 * upfront_fraction);
  std::printf("%s", live_table.ToString().c_str());
  util::TablePrinter open_table({"strategy", "load", "arrival/s", "arrivals",
                                 "shed", "shed_rate", "degraded", "done/s",
                                 "p50(ms)", "p95(ms)", "p99(ms)", "peak_q"});
  for (const OpenLoopCell& cell : open_loop_cells) {
    open_table.AddRow(
        {search::EvalStrategyName(cell.strategy), cell.load,
         util::FormatDouble(cell.arrival_qps, 1),
         std::to_string(cell.report.arrivals),
         std::to_string(cell.report.shed),
         util::FormatDouble(cell.report.shed_rate, 3),
         std::to_string(cell.report.degraded_admissions),
         util::FormatDouble(cell.report.cycles_per_second, 1),
         util::FormatDouble(1e3 * cell.report.p50_latency_seconds, 2),
         util::FormatDouble(1e3 * cell.report.p95_latency_seconds, 2),
         util::FormatDouble(1e3 * cell.report.p99_latency_seconds, 2),
         std::to_string(cell.report.peak_queue_depth)});
  }
  std::printf(
      "\nOpen-loop phase (K=1, 4 threads; Poisson arrivals at 0.5x and 4x\n"
      "the measured closed-loop capacity; admission gate 4 in-flight + 8\n"
      "queued, degraded-mode watermark 0.75 — past it, cycles shed ghost\n"
      "CACHE REFRESH, never ghost emission)\n");
  std::printf("%s", open_table.ToString().c_str());

  std::printf(
      "\nsession+retrieval digests identical across strategy AND shard AND\n"
      "thread counts: %s\nstatic-vs-live convergence digest parity: %s\n"
      "maxscore evaluator speedup vs taat (K=1): %.2fx\n"
      "\npaper claims to check: Fig. 2d puts per-cycle generation around a\n"
      "second at full scale on 2008-era hardware; the serving target here is\n"
      ">=2x cycles/s at 4 threads vs 1 (needs a >=4-core machine — sessions\n"
      "are embarrassingly parallel, so scaling is linear until the memory\n"
      "bus saturates). Neither sharding nor the evaluation strategy nor\n"
      "LIVE INGEST may change a single result bit: the digest checks above\n"
      "ARE the paper's no-fidelity-loss invariant, held across the\n"
      "distribution boundary, the MaxScore pruning logic, and the\n"
      "segment/merge/snapshot machinery.\n",
      deterministic ? "yes" : "NO (bug!)",
      live_parity ? "yes" : "NO (bug!)", maxscore_speedup);

  if (!json_path.empty()) {
    util::JsonWriter json;
    json.BeginObject();
    json.Field("bench", "serving_throughput");
    json.Field("schema_version", kJsonSchemaVersion);
    json.Field("mode", smoke ? "smoke" : "full");
    json.Field("num_topics", static_cast<uint64_t>(num_topics));
    json.Field("hardware_threads", static_cast<uint64_t>(hw));
    json.Field("deterministic", deterministic);
    json.Field("live_static_parity", live_parity);
    json.Field("live_ingest_upfront_fraction", upfront_fraction);
    json.Field("maxscore_eval_speedup_k1", maxscore_speedup);
    json.Key("serving_cells");
    json.BeginArray();
    for (const ServingCell& cell : serving_cells) {
      json.BeginObject();
      json.Field("strategy", search::EvalStrategyName(cell.strategy));
      json.Field("shards", static_cast<uint64_t>(cell.shards));
      json.Field("threads", static_cast<uint64_t>(cell.threads));
      json.Field("sessions",
                 static_cast<uint64_t>(cell.report.sessions.size()));
      json.Field("cycles", static_cast<uint64_t>(cell.report.total_cycles));
      json.Field("queries", static_cast<uint64_t>(cell.report.total_queries));
      json.Field("wall_seconds", cell.report.wall_seconds);
      json.Field("cycles_per_second", cell.report.cycles_per_second);
      json.Field("queries_per_second", cell.report.queries_per_second);
      json.Field("generation_ms_per_cycle",
                 cell.report.total_cycles > 0
                     ? 1e3 * cell.generation_seconds /
                           static_cast<double>(cell.report.total_cycles)
                     : 0.0);
      json.Field("digest", util::StrFormat("%016llx",
                                           static_cast<unsigned long long>(
                                               cell.digest)));
      json.EndObject();
    }
    json.EndArray();
    json.Key("retrieval_cells");
    json.BeginArray();
    for (const RetrievalCell& cell : retrieval_cells) {
      json.BeginObject();
      json.Field("strategy", search::EvalStrategyName(cell.strategy));
      json.Field("shards", static_cast<uint64_t>(cell.shards));
      json.Field("queries", static_cast<uint64_t>(cell.queries));
      json.Field("wall_seconds", cell.wall_seconds);
      json.Field("queries_per_second", cell.queries_per_second);
      json.Field("digest", util::StrFormat("%016llx",
                                           static_cast<unsigned long long>(
                                               cell.digest)));
      json.EndObject();
    }
    json.EndArray();
    json.Key("live_cells");
    json.BeginArray();
    for (const LiveCell& cell : live_cells) {
      json.BeginObject();
      json.Field("strategy", search::EvalStrategyName(cell.strategy));
      json.Field("threads", static_cast<uint64_t>(cell.threads));
      json.Field("eval_threads", static_cast<uint64_t>(cell.eval_threads));
      json.Field("upfront_docs", static_cast<uint64_t>(cell.upfront_docs));
      json.Field("streamed_docs", static_cast<uint64_t>(cell.streamed_docs));
      json.Field("ingest_wall_seconds", cell.ingest_wall_seconds);
      json.Field("ingest_docs_per_second", cell.ingest_docs_per_second);
      json.Field("final_segments", static_cast<uint64_t>(cell.final_segments));
      json.Field("cycles", static_cast<uint64_t>(cell.report.total_cycles));
      json.Field("queries", static_cast<uint64_t>(cell.report.total_queries));
      json.Field("wall_seconds", cell.report.wall_seconds);
      json.Field("cycles_per_second", cell.report.cycles_per_second);
      json.Field("queries_per_second", cell.report.queries_per_second);
      json.Field("parity_with_static", cell.parity_with_static);
      json.EndObject();
    }
    json.EndArray();
    json.Key("open_loop_cells");
    json.BeginArray();
    for (const OpenLoopCell& cell : open_loop_cells) {
      json.BeginObject();
      json.Field("strategy", search::EvalStrategyName(cell.strategy));
      json.Field("load", cell.load);
      json.Field("arrival_qps", cell.arrival_qps);
      json.Field("arrivals", static_cast<uint64_t>(cell.report.arrivals));
      json.Field("admitted", static_cast<uint64_t>(cell.report.admitted));
      json.Field("shed", static_cast<uint64_t>(cell.report.shed));
      json.Field("shed_rate", cell.report.shed_rate);
      json.Field("degraded_admissions",
                 static_cast<uint64_t>(cell.report.degraded_admissions));
      json.Field("completed", static_cast<uint64_t>(cell.report.completed));
      json.Field("deadline_exceeded",
                 static_cast<uint64_t>(cell.report.deadline_exceeded));
      json.Field("wall_seconds", cell.report.wall_seconds);
      json.Field("cycles_per_second", cell.report.cycles_per_second);
      json.Field("p50_latency_ms", 1e3 * cell.report.p50_latency_seconds);
      json.Field("p95_latency_ms", 1e3 * cell.report.p95_latency_seconds);
      json.Field("p99_latency_ms", 1e3 * cell.report.p99_latency_seconds);
      json.Field("peak_in_system",
                 static_cast<uint64_t>(cell.report.peak_in_system));
      json.Field("peak_queue_depth",
                 static_cast<uint64_t>(cell.report.peak_queue_depth));
      json.EndObject();
    }
    json.EndArray();
    // Whole-run registry snapshot: every counter/gauge/histogram the
    // instrumented request path recorded across all phases. Empty objects
    // under TOPPRIV_METRICS=OFF.
    json.Key("metrics");
    util::MetricsRegistry::Default().ExportJson(&json);
    json.EndObject();
    util::Status status = util::WriteFile(json_path, json.str() + "\n");
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (trace_sink != nullptr) {
    // Detach before export so no span started past this point can race the
    // ring buffer while we serialize (and none can dangle once the sink
    // dies at end of scope).
    util::TraceSink::SetGlobal(nullptr);
    util::JsonWriter trace_json;
    trace_sink->ExportJson(&trace_json);
    util::Status status = util::WriteFile(trace_path, trace_json.str() + "\n");
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", trace_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu spans, %" PRIu64 " dropped)\n",
                trace_path.c_str(), trace_sink->Events().size(),
                trace_sink->dropped());
  }
  return deterministic && live_parity ? 0 : 1;
}
