// Reproduces the paper's Appendix A tables:
//   Table II  -- top-20 words of sample topics in the LDA200 model (several
//                crisp topics plus one generic topic);
//   Table III -- one common topic tracked across LDA050..LDA300;
//   Table IV  -- an LDA005 model whose topics are indistinct.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "experiments/fixture.h"
#include "topicmodel/gibbs_trainer.h"
#include "util/strings.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;

namespace {

// Top-k terms of topic `t` as strings.
std::vector<std::string> TopWords(const topicmodel::LdaModel& model,
                                  const text::Vocabulary& vocab,
                                  topicmodel::TopicId t, size_t k) {
  std::vector<std::string> out;
  for (const topicmodel::WordProb& wp : model.TopWords(t, k)) {
    out.push_back(vocab.TermString(wp.term));
  }
  return out;
}

// Finds the topic whose top words best match `anchor_words`.
topicmodel::TopicId FindTopicByAnchors(
    const topicmodel::LdaModel& model, const text::Vocabulary& vocab,
    const std::vector<std::string>& anchor_words) {
  topicmodel::TopicId best = 0;
  size_t best_hits = 0;
  for (size_t t = 0; t < model.num_topics(); ++t) {
    size_t hits = 0;
    for (const topicmodel::WordProb& wp :
         model.TopWords(static_cast<topicmodel::TopicId>(t), 25)) {
      const std::string& w = vocab.TermString(wp.term);
      for (const std::string& anchor : anchor_words) {
        if (w == anchor) ++hits;
      }
    }
    if (hits > best_hits) {
      best_hits = hits;
      best = static_cast<topicmodel::TopicId>(t);
    }
  }
  return best;
}

// Prints a side-by-side word table (columns = labeled topics).
void PrintWordColumns(const std::vector<std::string>& labels,
                      const std::vector<std::vector<std::string>>& columns,
                      size_t rows) {
  util::TablePrinter table(labels);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (const auto& col : columns) {
      row.push_back(r < col.size() ? col[r] : "");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main() {
  ExperimentFixture fixture;
  const text::Vocabulary& vocab = fixture.corpus().vocabulary();

  // ---------------------------------------------------------- Table II --
  // Sample topics in the LDA200 model: medicine, semiconductors, computing,
  // education (the paper's picks), plus whichever topic is most "generic"
  // (dominated by general words).
  const topicmodel::LdaModel& lda200 = fixture.model(200);

  struct Pick {
    const char* label;
    std::vector<std::string> anchors;
  };
  const std::vector<Pick> picks = {
      {"medicine", {"aids", "cancer", "patients", "disease", "blood"}},
      {"chips", {"chip", "chips", "semiconductor", "intel", "electronics"}},
      {"computing", {"computer", "software", "ibm", "apple", "machines"}},
      {"education", {"school", "university", "students", "education",
                     "college"}},
      {"generic", {"said", "million", "year", "new", "company"}},
  };

  std::vector<std::string> labels;
  std::vector<std::vector<std::string>> columns;
  for (const Pick& pick : picks) {
    topicmodel::TopicId t = FindTopicByAnchors(lda200, vocab, pick.anchors);
    labels.push_back(util::StrFormat("Topic %u (%s)", t, pick.label));
    columns.push_back(TopWords(lda200, vocab, t, 20));
  }
  std::printf("\nTable II: sample topics in the LDA200 model (top 20 words)\n");
  PrintWordColumns(labels, columns, 20);

  // --------------------------------------------------------- Table III --
  // The medicine topic tracked across all six models.
  std::printf("\nTable III: a common topic across the LDA models\n");
  labels.clear();
  columns.clear();
  for (size_t num_topics : experiments::PaperModelSizes()) {
    const topicmodel::LdaModel& model = fixture.model(num_topics);
    topicmodel::TopicId t =
        FindTopicByAnchors(model, vocab, picks[0].anchors);
    labels.push_back(ExperimentFixture::ModelName(num_topics));
    columns.push_back(TopWords(model, vocab, t, 20));
  }
  PrintWordColumns(labels, columns, 20);

  // ---------------------------------------------------------- Table IV --
  // LDA005: too few topics makes every topic an indistinct mixture.
  std::printf("\nTable IV: topics in an LDA005 model (indistinct mixtures)\n");
  topicmodel::TrainerOptions tiny;
  tiny.num_topics = 5;
  tiny.iterations = fixture.config().lda_iterations;
  tiny.seed = 7005;
  topicmodel::LdaModel lda005 =
      topicmodel::GibbsTrainer(tiny).Train(fixture.corpus());
  labels.clear();
  columns.clear();
  for (size_t t = 0; t < 5; ++t) {
    labels.push_back(util::StrFormat("Topic %zu", t));
    columns.push_back(
        TopWords(lda005, vocab, static_cast<topicmodel::TopicId>(t), 20));
  }
  PrintWordColumns(labels, columns, 20);

  std::printf(
      "\npaper shape check: Table II columns are coherent single subjects\n"
      "(plus one generic column); Table III shows the same subject\n"
      "persisting across model sizes; Table IV columns blur many subjects\n"
      "together and are dominated by general words.\n");
  return 0;
}
