// Quantifies the Section IV-D resilience claims: each attack's recovery
// rate against unprotected traffic versus TopPriv-protected traffic.
// (Not a paper figure — the paper argues these attacks fail qualitatively;
// this harness measures it.)

#include <cstdio>
#include <vector>

#include "adversary/attacks.h"
#include "experiments/fixture.h"
#include "experiments/runner.h"
#include "topicmodel/inference.h"
#include "toppriv/belief.h"
#include "toppriv/ghost_generator.h"
#include "util/strings.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;

int main() {
  ExperimentFixture fixture;
  const size_t num_topics = 50;  // near the corpus true coverage, as Sec IV-B advises
  const topicmodel::LdaModel& model = fixture.model(num_topics);
  topicmodel::LdaInferencer inferencer(model);

  core::PrivacySpec spec;  // (5%, 1%)
  core::GhostQueryGenerator generator(model, inferencer, spec);

  // Build protected and unprotected cycle views for the whole workload.
  std::vector<adversary::CycleView> protected_views, plain_views;
  util::Rng rng(4242);
  size_t queries_used = 0;
  for (const corpus::BenchmarkQuery& q : fixture.workload()) {
    if (queries_used >= 60) break;  // probing attack is quadratic-ish; cap
    core::QueryCycle cycle = generator.Protect(q.term_ids, &rng);
    if (cycle.intention.empty()) continue;
    ++queries_used;
    adversary::CycleView guarded;
    guarded.queries = cycle.queries;
    guarded.true_user_index = cycle.user_index;
    guarded.true_intention = cycle.intention;
    protected_views.push_back(std::move(guarded));

    adversary::CycleView plain;
    plain.queries = {q.term_ids};
    plain.true_user_index = 0;
    plain.true_intention = cycle.intention;
    plain_views.push_back(std::move(plain));
  }

  auto mean_recall = [&](const std::vector<adversary::CycleView>& views,
                         auto evaluate) {
    double sum = 0.0;
    for (const auto& v : views) sum += evaluate(v);
    return views.empty() ? 0.0 : sum / static_cast<double>(views.size());
  };

  adversary::TopicInferenceAttack topic_attack(model, inferencer);
  adversary::GhostDiscountAttack discount_attack(model, inferencer, 0.05);
  adversary::TermEliminationAttack elimination_attack(model, inferencer);
  adversary::ProbingAttack probing_attack(&generator);

  util::TablePrinter table(
      {"attack (Sec IV-D)", "metric", "unprotected", "TopPriv"});

  table.AddRow(
      {"topic inference (top-3)", "intention recall",
       util::FormatDouble(
           mean_recall(plain_views,
                       [&](const adversary::CycleView& v) {
                         return topic_attack.Evaluate(v, 3).recall;
                       }),
           3),
       util::FormatDouble(
           mean_recall(protected_views,
                       [&](const adversary::CycleView& v) {
                         return topic_attack.Evaluate(v, 3).recall;
                       }),
           3)});
  std::fprintf(stderr, "[resilience] topic inference done\n");

  double avg_cycle_len = 0.0;
  for (const auto& v : protected_views) {
    avg_cycle_len += static_cast<double>(v.queries.size());
  }
  avg_cycle_len /= static_cast<double>(protected_views.size());
  table.AddRow(
      {"ghost discount", "user-query id accuracy",
       util::FormatDouble(
           mean_recall(plain_views,
                       [&](const adversary::CycleView& v) {
                         return discount_attack.Evaluate(v) ? 1.0 : 0.0;
                       }),
           3),
       util::FormatDouble(
           mean_recall(protected_views,
                       [&](const adversary::CycleView& v) {
                         return discount_attack.Evaluate(v) ? 1.0 : 0.0;
                       }),
           3) +
           util::StrFormat(" (chance %.3f)", 1.0 / avg_cycle_len)});
  std::fprintf(stderr, "[resilience] ghost discount done\n");

  table.AddRow(
      {"term elimination (m=3)", "intention recall",
       util::FormatDouble(
           mean_recall(plain_views,
                       [&](const adversary::CycleView& v) {
                         return elimination_attack.Evaluate(v, 3, 3).recall;
                       }),
           3),
       util::FormatDouble(
           mean_recall(protected_views,
                       [&](const adversary::CycleView& v) {
                         return elimination_attack.Evaluate(v, 3, 3).recall;
                       }),
           3)});
  table.AddRow(
      {"term elimination (m=12)", "intention recall",
       util::FormatDouble(
           mean_recall(plain_views,
                       [&](const adversary::CycleView& v) {
                         return elimination_attack.Evaluate(v, 12, 3).recall;
                       }),
           3),
       util::FormatDouble(
           mean_recall(protected_views,
                       [&](const adversary::CycleView& v) {
                         return elimination_attack.Evaluate(v, 12, 3).recall;
                       }),
           3)});
  std::fprintf(stderr, "[resilience] term elimination done\n");

  // Probing is expensive (regenerates a cycle per logged query); sample.
  std::vector<adversary::CycleView> probe_sample(
      protected_views.begin(),
      protected_views.begin() + std::min<size_t>(protected_views.size(), 10));
  util::Rng probe_rng(777);
  table.AddRow(
      {"probing / replay", "best ghost match rate", "n/a",
       util::FormatDouble(
           mean_recall(probe_sample,
                       [&](const adversary::CycleView& v) {
                         return probing_attack.BestReplayMatchRate(v,
                                                                   &probe_rng);
                       }),
           3)});
  std::fprintf(stderr, "[resilience] probing done\n");

  std::printf("\nSection IV-D attack resilience (LDA050, eps1=5%%, eps2=1%%, "
              "%zu cycles)\n",
              protected_views.size());
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper claim check: attacks that are reliable against unprotected\n"
      "queries degrade sharply under TopPriv; user-query identification\n"
      "approaches chance (1/v); replay reproduces ~0%% of ghost queries.\n"
      "REPRODUCTION NOTE: shallow term elimination (m=3) recovers more here\n"
      "than on WSJ because our synthetic topics have nearly disjoint seed\n"
      "vocabularies (no 'apache'-style shared terms); the adversary still\n"
      "has no safe discount depth — at m=12 the recovery collapses, and the\n"
      "right m depends on the secret cycle composition (see EXPERIMENTS.md).\n");
  return 0;
}
