// Head-to-head comparison of all four protection schemes discussed by the
// paper, at a matched budget of ~4 queries (or 4x terms) per user query:
//
//   TrackMeNot [9]        random ghost queries           (Sec II)
//   Murugesan-Clifton [10] canonical-query substitution  (Sec II)
//   PDX [11]              query embellishment            (Sec V-C)
//   TopPriv               topic-cognizant ghost queries  (this paper)
//
// Metrics: topical exposure of the intention, ghost/cover realism
// (coherence, Def. 3), and retrieval fidelity against the genuine query on
// an UNMODIFIED engine. This is the paper's qualitative Section II
// argument, made quantitative.

#include <cstdio>
#include <memory>

#include "baselines/canonical.h"
#include "baselines/trackmenot.h"
#include "experiments/fixture.h"
#include "pdx/embellisher.h"
#include "pdx/thesaurus.h"
#include "search/engine.h"
#include "search/eval.h"
#include "search/scorer.h"
#include "topicmodel/inference.h"
#include "topicmodel/lsa.h"
#include "toppriv/belief.h"
#include "toppriv/ghost_generator.h"
#include "util/stats.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;

namespace {

struct SchemeResult {
  util::OnlineStats exposure_pct;
  util::OnlineStats coherence;
  util::OnlineStats fidelity;  // nDCG@20 of delivered vs genuine results
  util::OnlineStats queries_sent;
};

}  // namespace

int main() {
  ExperimentFixture fixture;
  const size_t num_topics = 50;  // near the corpus's true coverage
  const topicmodel::LdaModel& model = fixture.model(num_topics);
  topicmodel::LdaInferencer inferencer(model);
  const double eps1 = 0.05;
  const size_t budget = 4;  // cycle length / expansion factor

  // Monolithic by default; TOPPRIV_SHARDS=K runs the same figure over a
  // sharded engine (results are identical by the parity contract).
  std::unique_ptr<search::QueryEngine> engine_owner =
      fixture.MakeEngine(search::MakeBm25Scorer());
  search::QueryEngine& engine = *engine_owner;

  // Scheme machinery.
  baselines::TrackMeNot trackmenot(fixture.corpus(),
                                   baselines::TrackMeNotMode::kUniformRandom);
  topicmodel::LsaOptions lsa_options;
  lsa_options.num_factors = 30;  // [10] uses a 30-factor LSI space
  topicmodel::LsaModel lsa =
      topicmodel::LsaTrainer(lsa_options).Train(fixture.corpus());
  baselines::CanonicalOptions canonical_options;
  canonical_options.group_size = budget;
  baselines::CanonicalQueryScheme canonical(fixture.corpus(), lsa,
                                            canonical_options);
  pdx::Thesaurus thesaurus(fixture.corpus(), model);
  pdx::PdxEmbellisher embellisher(thesaurus);
  core::PrivacySpec spec;
  spec.epsilon1 = eps1;
  spec.epsilon2 = eps1;
  spec.fixed_ghost_count = budget - 1;
  core::GhostQueryGenerator toppriv_generator(model, inferencer, spec);

  SchemeResult results[4];
  const char* names[4] = {"TrackMeNot [9]", "Murugesan-Clifton [10]",
                          "PDX [11]", "TopPriv (paper)"};

  util::Rng rng(20260613);
  const size_t k = 20;
  size_t evaluated = 0;

  auto coherence_of = [&](const std::vector<text::TermId>& q) {
    std::vector<double> posterior = inferencer.InferQuery(q);
    double top = 0.0;
    for (double p : posterior) top = std::max(top, p);
    return top;
  };
  auto exposure_of = [&](const std::vector<std::vector<text::TermId>>& cycle,
                         const std::vector<topicmodel::TopicId>& intention) {
    std::vector<std::vector<double>> posteriors;
    for (const auto& q : cycle) posteriors.push_back(inferencer.InferQuery(q));
    std::vector<double> mix =
        topicmodel::LdaInferencer::CyclePosterior(posteriors);
    core::BeliefProfile profile = core::MakeBeliefProfile(model, std::move(mix));
    return core::Exposure(profile.boost, intention) * 100.0;
  };

  for (const corpus::BenchmarkQuery& q : fixture.workload()) {
    // Shared ground: the intention at eps1 on the raw query.
    core::BeliefProfile raw = core::MakeBeliefProfile(
        model, inferencer.InferQuery(q.term_ids));
    std::vector<topicmodel::TopicId> intention =
        core::ExtractIntention(raw, eps1);
    if (intention.empty()) continue;
    ++evaluated;

    std::vector<search::ScoredDoc> genuine_results =
        engine.Evaluate(q.term_ids, k);
    std::vector<corpus::DocId> genuine_docs;
    for (const auto& sd : genuine_results) genuine_docs.push_back(sd.doc);

    // --- TrackMeNot: random ghosts; user query submitted verbatim.
    {
      size_t user_index = 0;
      auto cycle = trackmenot.MakeCycle(q.term_ids, budget - 1, &rng,
                                        &user_index);
      results[0].exposure_pct.Add(exposure_of(cycle, intention));
      for (size_t i = 0; i < cycle.size(); ++i) {
        if (i != user_index) results[0].coherence.Add(coherence_of(cycle[i]));
      }
      results[0].fidelity.Add(1.0);  // genuine query still sent verbatim
      results[0].queries_sent.Add(static_cast<double>(cycle.size()));
    }

    // --- Murugesan-Clifton: the query is REPLACED by a canonical one.
    {
      size_t position = 0;
      auto cycle = canonical.Substitute(q.term_ids, &rng, &position);
      results[1].exposure_pct.Add(exposure_of(cycle, intention));
      for (size_t i = 0; i < cycle.size(); ++i) {
        if (i != position) results[1].coherence.Add(coherence_of(cycle[i]));
      }
      // Fidelity: the engine answers the canonical query, not the user's.
      std::vector<search::ScoredDoc> delivered =
          engine.Evaluate(cycle[position], k);
      results[1].fidelity.Add(search::NdcgAtK(delivered, genuine_docs, k));
      results[1].queries_sent.Add(static_cast<double>(cycle.size()));
    }

    // --- PDX: one embellished query; unmodified engine scores it.
    {
      pdx::EmbellishedQuery embellished = embellisher.Embellish(
          q.term_ids, static_cast<double>(budget), &rng);
      results[2].exposure_pct.Add(
          exposure_of({embellished.terms}, intention));
      results[2].coherence.Add(coherence_of(embellished.terms));
      std::vector<search::ScoredDoc> delivered =
          engine.Evaluate(embellished.terms, k);
      results[2].fidelity.Add(search::NdcgAtK(delivered, genuine_docs, k));
      results[2].queries_sent.Add(1.0);
    }

    // --- TopPriv.
    {
      core::QueryCycle cycle = toppriv_generator.Protect(q.term_ids, &rng);
      results[3].exposure_pct.Add(cycle.exposure_after * 100.0);
      for (size_t i = 0; i < cycle.queries.size(); ++i) {
        if (i != cycle.user_index) {
          results[3].coherence.Add(coherence_of(cycle.queries[i]));
        }
      }
      results[3].fidelity.Add(1.0);  // exact results, ghosts filtered
      results[3].queries_sent.Add(static_cast<double>(cycle.length()));
    }
  }

  double genuine_coherence = 0.0;
  {
    util::OnlineStats stats;
    for (const corpus::BenchmarkQuery& q : fixture.workload()) {
      stats.Add(coherence_of(q.term_ids));
    }
    genuine_coherence = stats.mean();
  }

  std::printf("\nBaseline comparison at matched budget (%zu queries / %zux "
              "terms), LDA%03zu, eps1=%.0f%%, %zu topical queries\n",
              budget, budget, num_topics, eps1 * 100, evaluated);
  util::TablePrinter table({"scheme", "exposure(%)", "cover coherence",
                            "fidelity nDCG@20", "queries/req"});
  for (int s = 0; s < 4; ++s) {
    table.AddRow({names[s], util::FormatDouble(results[s].exposure_pct.mean(), 3),
                  util::FormatDouble(results[s].coherence.mean(), 3),
                  util::FormatDouble(results[s].fidelity.mean(), 3),
                  util::FormatDouble(results[s].queries_sent.mean(), 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\ngenuine-query coherence yardstick: %.3f.\n"
      "paper claims to check: TrackMeNot's random ghosts are incoherent\n"
      "(dismissible, Def. 3); Murugesan-Clifton perturbs retrieval quality\n"
      "(fidelity < 1); PDX leaves high exposure on an unmodified engine and\n"
      "also perturbs its results; TopPriv alone combines low exposure,\n"
      "realistic ghosts and exact results.\n",
      genuine_coherence);
  return 0;
}
