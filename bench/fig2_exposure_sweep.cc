// Reproduces paper Figure 2: TopPriv with epsilon1 = 5%, varying epsilon2
// in {0.5, 1, 2, 3, 4, 5}% across the six LDA models.
//
// Emits four series (one table per sub-figure):
//   (a) exposure  max_{t in U} B(t|C)        -- should stay <= epsilon2
//   (b) mask      max_{t notin U} B(t|C)     -- should dominate exposure
//   (c) cycle length v                       -- grows as epsilon2 tightens
//   (d) query generation time (client-side)  -- grows as epsilon2 tightens

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/fixture.h"
#include "experiments/runner.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;
using experiments::TopPrivCell;

int main() {
  ExperimentFixture fixture;
  const std::vector<double> eps2_values = {0.005, 0.01, 0.02,
                                           0.03,  0.04, 0.05};
  const std::vector<size_t>& model_sizes = experiments::PaperModelSizes();

  // cells[model][eps2]
  std::vector<std::vector<TopPrivCell>> cells;
  for (size_t num_topics : model_sizes) {
    std::vector<TopPrivCell> row;
    for (double eps2 : eps2_values) {
      core::PrivacySpec spec;
      spec.epsilon1 = 0.05;
      spec.epsilon2 = eps2;
      row.push_back(RunTopPrivCell(fixture, num_topics, spec));
      std::fprintf(stderr, "[fig2] %s eps2=%.1f%% done\n",
                   ExperimentFixture::ModelName(num_topics).c_str(),
                   eps2 * 100.0);
    }
    cells.push_back(std::move(row));
  }

  auto print_subfigure = [&](const char* title, const char* unit,
                             auto metric) {
    std::printf("\nFigure 2%s  (epsilon1 = 5%%)\n", title);
    std::vector<std::string> header = {"eps2(%)"};
    for (size_t m : model_sizes) {
      header.push_back(ExperimentFixture::ModelName(m));
    }
    util::TablePrinter table(header);
    for (size_t e = 0; e < eps2_values.size(); ++e) {
      std::vector<std::string> row = {
          util::FormatDouble(eps2_values[e] * 100.0, 1)};
      for (size_t m = 0; m < model_sizes.size(); ++m) {
        row.push_back(util::FormatDouble(metric(cells[m][e]), 3));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("unit: %s\n", unit);
  };

  print_subfigure("(a) exposure  max_{t in U} B(t|C)", "percent",
                  [](const TopPrivCell& c) { return c.exposure_pct; });
  print_subfigure("(b) mask  max_{t not in U} B(t|C)", "percent",
                  [](const TopPrivCell& c) { return c.mask_pct; });
  print_subfigure("(c) cycle length v", "queries per cycle",
                  [](const TopPrivCell& c) { return c.cycle_length; });
  print_subfigure("(d) query generation time", "seconds (client)",
                  [](const TopPrivCell& c) { return c.generation_seconds; });

  std::printf(
      "\npaper shape check: exposure tracks eps2 down to ~3%% then floors;\n"
      "mask stays well above exposure; v and generation time grow as eps2\n"
      "tightens. Satisfied fraction at eps2=1%% (LDA200): %.2f\n",
      cells[3][1].satisfied_fraction);
  return 0;
}
