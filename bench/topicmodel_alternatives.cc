// Appendix A.2 experiment: can the alternative topical-modeling techniques
// (pLSA, LSA) support TopPriv?
//
// The paper argues for LDA over pLSA (ill-defined query semantics; we use
// the standard fold-in workaround to measure anyway) and over LSA (memory;
// also LSA yields geometry, not probabilities, so it cannot drive the
// belief model at all — we report its training cost and leave it to the
// Murugesan-Clifton baseline, which is where the paper says it belongs).

#include <cstdio>

#include "experiments/fixture.h"
#include "experiments/runner.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "topicmodel/lsa.h"
#include "topicmodel/plsa.h"
#include "toppriv/ghost_generator.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

using namespace toppriv;
using experiments::ExperimentFixture;

namespace {

struct ModelRun {
  double train_seconds = 0.0;
  double ll_per_token = 0.0;
  double exposure_pct = 0.0;
  double cycle_length = 0.0;
  double satisfied = 0.0;
};

ModelRun RunTopPrivOn(const topicmodel::LdaModel& model,
                      ExperimentFixture& fixture) {
  topicmodel::LdaInferencer inferencer(model);
  core::PrivacySpec spec;  // (5%, 1%)
  core::GhostQueryGenerator generator(model, inferencer, spec);
  util::Rng rng(55);
  util::OnlineStats exposure, cycle_len;
  size_t satisfied = 0, counted = 0;
  for (const corpus::BenchmarkQuery& q : fixture.workload()) {
    core::QueryCycle cycle = generator.Protect(q.term_ids, &rng);
    exposure.Add(cycle.exposure_after * 100.0);
    cycle_len.Add(static_cast<double>(cycle.length()));
    if (cycle.met_epsilon2) ++satisfied;
    ++counted;
  }
  ModelRun run;
  run.exposure_pct = exposure.mean();
  run.cycle_length = cycle_len.mean();
  run.satisfied = counted > 0 ? static_cast<double>(satisfied) / counted : 0;
  return run;
}

}  // namespace

int main() {
  ExperimentFixture fixture;
  const size_t num_topics = 50;

  util::TablePrinter table({"model", "train(s)", "loglik/token",
                            "exposure(%)", "cycle v", "met eps2"});

  // LDA (the paper's choice).
  {
    util::WallTimer timer;
    topicmodel::TrainerOptions options;
    options.num_topics = num_topics;
    options.iterations = fixture.config().lda_iterations;
    topicmodel::LdaModel model =
        topicmodel::GibbsTrainer(options).Train(fixture.corpus());
    double train_s = timer.ElapsedSeconds();
    ModelRun run = RunTopPrivOn(model, fixture);
    table.AddRow({"LDA (Gibbs)", util::FormatDouble(train_s, 1),
                  util::FormatDouble(topicmodel::GibbsTrainer::
                                         LogLikelihoodPerToken(
                                             model, fixture.corpus()),
                                     3),
                  util::FormatDouble(run.exposure_pct, 3),
                  util::FormatDouble(run.cycle_length, 2),
                  util::FormatDouble(run.satisfied, 2)});
    std::fprintf(stderr, "[alt] LDA done\n");
  }

  // pLSA with fold-in.
  {
    util::WallTimer timer;
    topicmodel::PlsaOptions options;
    options.num_topics = num_topics;
    options.iterations = 40;
    topicmodel::LdaModel model =
        topicmodel::PlsaTrainer(options).Train(fixture.corpus());
    double train_s = timer.ElapsedSeconds();
    ModelRun run = RunTopPrivOn(model, fixture);
    table.AddRow({"pLSA (EM, fold-in)", util::FormatDouble(train_s, 1),
                  util::FormatDouble(topicmodel::GibbsTrainer::
                                         LogLikelihoodPerToken(
                                             model, fixture.corpus()),
                                     3),
                  util::FormatDouble(run.exposure_pct, 3),
                  util::FormatDouble(run.cycle_length, 2),
                  util::FormatDouble(run.satisfied, 2)});
    std::fprintf(stderr, "[alt] pLSA done\n");
  }

  // LSA: geometry only — no Pr(t), Pr(w|t), so TopPriv's belief model has
  // nothing to consume. Report the factorization cost for completeness.
  {
    util::WallTimer timer;
    topicmodel::LsaOptions options;
    options.num_factors = num_topics;
    topicmodel::LsaModel model =
        topicmodel::LsaTrainer(options).Train(fixture.corpus());
    double train_s = timer.ElapsedSeconds();
    table.AddRow({"LSA (truncated SVD)", util::FormatDouble(train_s, 1),
                  "n/a (non-probabilistic)", "n/a", "n/a",
                  util::FormatDouble(
                      static_cast<double>(model.singular_values().front()),
                      1) +
                      " (sigma1)"});
    std::fprintf(stderr, "[alt] LSA done\n");
  }

  std::printf("\nAppendix A.2: alternative topic models driving TopPriv "
              "(%zu topics/factors)\n",
              num_topics);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper claims to check: LDA fits the corpus at least as well as\n"
      "pLSA's fold-in workaround while having principled query semantics;\n"
      "both drive TopPriv to meet (5%%, 1%%)-privacy, but pLSA's weaker\n"
      "unseen-query inference typically costs longer cycles; LSA cannot\n"
      "drive the belief model at all.\n");
  return 0;
}
