// Reproduces paper Figure 6: the LDA200 model's byte size versus the
// inverted index's byte size as the corpus grows.
//
// Paper shape: the index grows roughly linearly with the number of
// documents, while the LDA model grows sublinearly — its dominant structure
// Pr(w|t) levels off with the vocabulary size, which plateaus. (Our
// synthetic vocabulary has a bounded tail, so the plateau is sharp; WSJ's
// plateaus more gently.) The model additionally carries Pr(t|d), which is
// linear in documents but small next to Pr(w|t) at realistic scales.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "index/inverted_index.h"
#include "topicmodel/gibbs_trainer.h"
#include "util/table.h"

using namespace toppriv;

int main() {
  const std::vector<size_t> doc_counts = {250, 500, 1000, 2000, 4000};
  const size_t num_topics = 200;

  util::TablePrinter table({"docs", "vocab", "index(MB)", "lda200(MB)",
                            "phi(MB)", "theta(MB)", "ratio"});

  double first_index_mb = 0.0, first_model_mb = 0.0;
  double last_index_mb = 0.0, last_model_mb = 0.0;
  for (size_t docs : doc_counts) {
    corpus::GeneratorParams params;
    params.num_docs = docs;
    params.mean_doc_length = 100;
    // Heaps'-law-style vocabulary growth: the tail grows ~sqrt(docs), so a
    // 16x corpus increase yields a ~4x vocabulary increase that visibly
    // plateaus (the paper's "vocabulary size gradually plateaus because the
    // number of meaningful terms is limited").
    params.tail_vocab_size =
        static_cast<size_t>(150.0 * std::sqrt(static_cast<double>(docs)));
    corpus::CorpusGenerator generator(params);
    corpus::Corpus corpus = generator.Generate();
    index::InvertedIndex index = index::InvertedIndex::Build(corpus);
    uint64_t index_bytes = index.ComputeStats().encoded_bytes;

    topicmodel::TrainerOptions options;
    options.num_topics = num_topics;
    options.iterations = 30;  // size accounting only; fit quality irrelevant
    topicmodel::LdaModel model =
        topicmodel::GibbsTrainer(options).Train(corpus);

    const double mb = 1024.0 * 1024.0;
    double index_mb = static_cast<double>(index_bytes) / mb;
    double model_mb = static_cast<double>(model.SizeBytes()) / mb;
    double phi_mb = static_cast<double>(model.num_topics() *
                                        model.vocab_size() * sizeof(float)) /
                    mb;
    double theta_mb = static_cast<double>(model.num_docs() *
                                          model.num_topics() * sizeof(float)) /
                      mb;
    table.AddRow({std::to_string(docs), std::to_string(corpus.vocabulary_size()),
                  util::FormatDouble(index_mb, 2),
                  util::FormatDouble(model_mb, 2),
                  util::FormatDouble(phi_mb, 2),
                  util::FormatDouble(theta_mb, 2),
                  util::FormatDouble(model_mb / index_mb, 2)});
    if (first_index_mb == 0.0) {
      first_index_mb = index_mb;
      first_model_mb = model_mb;
    }
    last_index_mb = index_mb;
    last_model_mb = model_mb;
    std::fprintf(stderr, "[fig6] %zu docs done\n", docs);
  }

  std::printf("\nFigure 6: LDA200 model size vs inverted index size\n");
  std::printf("%s", table.ToString().c_str());

  double index_growth = last_index_mb / first_index_mb;
  double model_growth = last_model_mb / first_model_mb;
  std::printf(
      "\ngrowth over a %zux corpus increase: index %.1fx, model %.1fx\n"
      "paper shape check: index growth ~linear in docs, model growth\n"
      "sublinear (phi is bounded by the vocabulary plateau), so the model's\n"
      "space advantage widens with corpus size.\n",
      doc_counts.back() / doc_counts.front(), index_growth, model_growth);
  return 0;
}
