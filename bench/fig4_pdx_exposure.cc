// Reproduces paper Figure 4: exposure of the PDX query-embellishment
// baseline, max_{t in U} B(t|q_e), at query expansion factors 2, 4, 8, 12
// and 16x, sweeping the relevance threshold used to define U.
//
// Paper shape: for a fixed expansion factor, exposure tightens as the LDA
// model grows (posterior spreads over more relevant topics); larger
// expansion factors give PDX more room to inject decoys and lower exposure.

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/fixture.h"
#include "experiments/runner.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;
using experiments::PdxCell;

int main() {
  ExperimentFixture fixture;
  const std::vector<double> eps_values = {0.005, 0.01, 0.02,
                                          0.03,  0.04, 0.05};
  const std::vector<double> expansion_factors = {2, 4, 8, 12, 16};
  const std::vector<size_t>& model_sizes = experiments::PaperModelSizes();

  for (double factor : expansion_factors) {
    std::printf("\nFigure 4 (%gx query expansion): exposure "
                "max_{t in U} B(t|q_e)\n",
                factor);
    std::vector<std::string> header = {"eps1(%)"};
    for (size_t m : model_sizes) {
      header.push_back(ExperimentFixture::ModelName(m));
    }
    util::TablePrinter table(header);
    for (double eps : eps_values) {
      std::vector<std::string> row = {util::FormatDouble(eps * 100.0, 1)};
      for (size_t num_topics : model_sizes) {
        PdxCell cell = RunPdxCell(fixture, num_topics, eps, factor);
        row.push_back(util::FormatDouble(cell.exposure_pct, 3));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("unit: percent\n");
    std::fprintf(stderr, "[fig4] factor %gx done\n", factor);
  }

  std::printf(
      "\npaper shape check: exposure falls with more topics in the model\n"
      "and with larger expansion factors, but stays far above TopPriv's\n"
      "(compare bench/fig2_exposure_sweep and bench/fig5_toppriv_vs_pdx).\n");
  return 0;
}
