// Reproduces the paper's Section II posting-list arithmetic that rules out
// PIR: average vs maximum inverted-list length, the encoded index size, and
// the blow-up a PIR store would need (every list padded to the maximum
// length). On WSJ the paper reports 186.7 avg pairs, 127,848 max pairs and
// 259 MB -> 178 GB after padding; our synthetic corpus reproduces the same
// orders-of-magnitude skew at its own scale.

#include <cstdio>

#include "experiments/fixture.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;

int main() {
  ExperimentFixture fixture;
  const index::InvertedIndex& index = fixture.index();
  index::IndexStats stats = index.ComputeStats();

  const double mb = 1024.0 * 1024.0;
  util::TablePrinter table({"metric", "value"});
  table.AddRow({"documents", std::to_string(stats.num_documents)});
  table.AddRow({"vocabulary terms", std::to_string(stats.num_terms)});
  table.AddRow({"total postings", std::to_string(stats.total_postings)});
  table.AddRow({"avg list length (pairs)",
                util::FormatDouble(stats.avg_list_length, 1)});
  table.AddRow({"max list length (pairs)",
                std::to_string(stats.max_list_length)});
  table.AddRow({"max/avg skew",
                util::FormatDouble(stats.avg_list_length > 0
                                       ? stats.max_list_length /
                                             stats.avg_list_length
                                       : 0.0,
                                   1)});
  table.AddRow({"encoded index size (MB)",
                util::FormatDouble(stats.encoded_bytes / mb, 2)});
  table.AddRow({"PIR-padded size (MB)",
                util::FormatDouble(stats.pir_padded_bytes / mb, 2)});
  table.AddRow({"padding blow-up",
                util::FormatDouble(stats.encoded_bytes > 0
                                       ? static_cast<double>(
                                             stats.pir_padded_bytes) /
                                             static_cast<double>(
                                                 stats.encoded_bytes)
                                       : 0.0,
                                   1) + "x"});

  std::printf("\nSection II posting-list statistics (PIR impracticality)\n");
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper comparison (WSJ, 172,890 docs): avg 186.7 pairs, max 127,848\n"
      "pairs (685x skew), 259 MB -> 178 GB padded (~700x blow-up). The\n"
      "qualitative claim to check here: a huge max/avg skew makes padded-PIR\n"
      "storage orders of magnitude larger than the real index.\n");
  return 0;
}
