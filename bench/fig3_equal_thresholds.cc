// Reproduces paper Figure 3: TopPriv with epsilon1 = epsilon2 = eps, for
// eps in {0.5, 1, 2, 3, 4, 5}%, across the six LDA models.
//
// Emits six series (a-f): exposure, mask, cycle length, generation time,
// number of relevant topics |U|, and the max (best) rank attained by any
// relevant topic under B(t|C). The paper highlights two behaviors to check:
//   * lowering eps1 with eps2 keeps exposure falling (unlike Fig. 2),
//     because masking topics must now be < eps1-relevant;
//   * LDA050 runs out of masking topics below eps = 2% (exposure upturn,
//     slower growth in v).

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/fixture.h"
#include "experiments/runner.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;
using experiments::TopPrivCell;

int main() {
  ExperimentFixture fixture;
  const std::vector<double> eps_values = {0.005, 0.01, 0.02,
                                          0.03,  0.04, 0.05};
  const std::vector<size_t>& model_sizes = experiments::PaperModelSizes();

  std::vector<std::vector<TopPrivCell>> cells;
  for (size_t num_topics : model_sizes) {
    std::vector<TopPrivCell> row;
    for (double eps : eps_values) {
      core::PrivacySpec spec;
      spec.epsilon1 = eps;
      spec.epsilon2 = eps;
      row.push_back(RunTopPrivCell(fixture, num_topics, spec));
      std::fprintf(stderr, "[fig3] %s eps=%.1f%% done\n",
                   ExperimentFixture::ModelName(num_topics).c_str(),
                   eps * 100.0);
    }
    cells.push_back(std::move(row));
  }

  auto print_subfigure = [&](const char* title, const char* unit,
                             auto metric) {
    std::printf("\nFigure 3%s  (epsilon1 = epsilon2)\n", title);
    std::vector<std::string> header = {"eps(%)"};
    for (size_t m : model_sizes) {
      header.push_back(ExperimentFixture::ModelName(m));
    }
    util::TablePrinter table(header);
    for (size_t e = 0; e < eps_values.size(); ++e) {
      std::vector<std::string> row = {
          util::FormatDouble(eps_values[e] * 100.0, 1)};
      for (size_t m = 0; m < model_sizes.size(); ++m) {
        row.push_back(util::FormatDouble(metric(cells[m][e]), 3));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("unit: %s\n", unit);
  };

  print_subfigure("(a) exposure  max_{t in U} B(t|C)", "percent",
                  [](const TopPrivCell& c) { return c.exposure_pct; });
  print_subfigure("(b) mask  max_{t not in U} B(t|C)", "percent",
                  [](const TopPrivCell& c) { return c.mask_pct; });
  print_subfigure("(c) cycle length v", "queries per cycle",
                  [](const TopPrivCell& c) { return c.cycle_length; });
  print_subfigure("(d) query generation time", "seconds (client)",
                  [](const TopPrivCell& c) { return c.generation_seconds; });
  print_subfigure("(e) # relevant topics |U|", "topics",
                  [](const TopPrivCell& c) { return c.num_relevant_topics; });
  print_subfigure("(f) max rank of relevant topics", "rank (1 = most exposed)",
                  [](const TopPrivCell& c) { return c.max_rank_of_relevant; });

  std::printf(
      "\npaper shape check: relevant topics should be buried under many\n"
      "irrelevant ones at tight eps (Fig. 3f grows as eps falls); LDA050\n"
      "should show the worst exposure at the tightest eps (few masking\n"
      "topics remain below eps1).\n");
  return 0;
}
