// Reproduces paper Figure 5: the exposure ratio TopPriv / PDX at matched
// word budgets — TopPriv constrained to cycle length v, PDX to expansion
// factor f = v, for v in {2, 4, 8, 12}, across the six LDA models.
//
// Paper shape: ratio ~0.7 at v = 2 (TopPriv's ghost query is ~30% more
// effective) and falls to ~0.3 by v = 8: the differential widens with the
// budget.

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/fixture.h"
#include "experiments/runner.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;

int main() {
  ExperimentFixture fixture;
  const std::vector<size_t> budgets = {2, 4, 8, 12};
  const std::vector<size_t>& model_sizes = experiments::PaperModelSizes();
  const double eps1 = 0.05;

  std::printf("\nFigure 5: exposure ratio TopPriv(v) / PDX(f=v), "
              "epsilon1 = %g%%\n",
              eps1 * 100.0);
  std::vector<std::string> header = {"v (=f)"};
  for (size_t m : model_sizes) {
    header.push_back(ExperimentFixture::ModelName(m));
  }
  util::TablePrinter table(header);
  util::TablePrinter raw({"v", "model", "toppriv_exposure(%)",
                          "pdx_exposure(%)", "ratio"});

  for (size_t budget : budgets) {
    std::vector<std::string> row = {std::to_string(budget)};
    for (size_t num_topics : model_sizes) {
      core::PrivacySpec spec;
      spec.epsilon1 = eps1;
      spec.epsilon2 = eps1;  // inactive: fixed ghost count drives the loop
      spec.fixed_ghost_count = budget - 1;
      experiments::TopPrivCell ours = RunTopPrivCell(fixture, num_topics, spec);
      experiments::PdxCell theirs = RunPdxCell(
          fixture, num_topics, eps1, static_cast<double>(budget));
      double ratio = theirs.exposure_pct > 1e-9
                         ? ours.exposure_pct / theirs.exposure_pct
                         : 0.0;
      row.push_back(util::FormatDouble(ratio, 3));
      raw.AddRow({std::to_string(budget),
                  ExperimentFixture::ModelName(num_topics),
                  util::FormatDouble(ours.exposure_pct, 3),
                  util::FormatDouble(theirs.exposure_pct, 3),
                  util::FormatDouble(ratio, 3)});
    }
    table.AddRow(std::move(row));
    std::fprintf(stderr, "[fig5] budget %zu done\n", budget);
  }

  std::printf("%s", table.ToString().c_str());
  std::printf("\nraw series:\n%s", raw.ToString().c_str());
  std::printf(
      "\npaper shape check: ratio < 1 everywhere (TopPriv wins at every\n"
      "matched budget) and falls as the budget grows (~0.7 at v=2 down to\n"
      "~0.3 at v=8 in the paper).\n");
  return 0;
}
