// Session-level experiment (extension beyond the paper; DESIGN.md sec. 5):
// the cross-cycle intersection attack against (a) stateless per-cycle
// TopPriv, exactly as published, and (b) the session-hardened protector
// that maintains a persistent cover story.
//
// Setup: a user re-queries the same intention `n` times; the adversary
// takes each cycle's top-m boosted topics and intersects across cycles.
// Reported per n: surviving-set size, precision and recall of the true
// intention within the survivors.

#include <cstdio>

#include "adversary/intersection.h"
#include "experiments/fixture.h"
#include "topicmodel/inference.h"
#include "toppriv/session.h"
#include "util/stats.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;

int main() {
  ExperimentFixture fixture;
  const size_t num_topics = 50;
  const topicmodel::LdaModel& model = fixture.model(num_topics);
  topicmodel::LdaInferencer inferencer(model);
  core::PrivacySpec spec;  // (5%, 1%)
  const size_t top_m = 6;
  const std::vector<size_t> session_lengths = {1, 2, 4, 8, 16};
  const size_t num_users = 40;

  adversary::IntersectionAttack attack(model, inferencer);

  // One CDF table for the hundreds of per-(user, n) generators below; a
  // private table per generator would redo the O(T*V) build every
  // iteration.
  core::TopicCdfTable topic_cdfs(model);
  core::GeneratorOptions generator_options;
  generator_options.shared_topic_cdfs = &topic_cdfs;
  core::SessionOptions session_options;
  session_options.generator = generator_options;

  util::TablePrinter table({"cycles n", "scheme", "survivors", "precision",
                            "recall"});

  for (size_t n : session_lengths) {
    util::OnlineStats stateless_size, stateless_prec, stateless_rec;
    util::OnlineStats session_size, session_prec, session_rec;
    size_t evaluated = 0;
    for (size_t user = 0; user < num_users; ++user) {
      const corpus::BenchmarkQuery& q =
          fixture.workload()[user % fixture.workload().size()];

      // Stateless: fresh random masking topics every cycle.
      core::GhostQueryGenerator stateless(model, inferencer, spec,
                                          generator_options);
      util::Rng rng_a(1000 + user * 37 + n);
      std::vector<adversary::CycleView> stateless_views;
      for (size_t i = 0; i < n; ++i) {
        core::QueryCycle cycle = stateless.Protect(q.term_ids, &rng_a);
        stateless_views.push_back(adversary::CycleView{
            cycle.queries, cycle.user_index, cycle.intention});
      }
      if (stateless_views.front().true_intention.empty()) continue;
      ++evaluated;

      // Session-hardened: persistent cover story.
      core::SessionProtector session(model, inferencer, spec,
                                     session_options);
      util::Rng rng_b(2000 + user * 37 + n);
      std::vector<adversary::CycleView> session_views;
      for (size_t i = 0; i < n; ++i) {
        core::QueryCycle cycle = session.Protect(q.term_ids, &rng_b);
        session_views.push_back(adversary::CycleView{
            cycle.queries, cycle.user_index, cycle.intention});
      }

      auto survivors_a = attack.Intersect(stateless_views, top_m);
      auto survivors_b = attack.Intersect(session_views, top_m);
      auto score_a = attack.Evaluate(stateless_views, top_m);
      auto score_b = attack.Evaluate(session_views, top_m);
      stateless_size.Add(static_cast<double>(survivors_a.size()));
      session_size.Add(static_cast<double>(survivors_b.size()));
      stateless_prec.Add(score_a.precision);
      session_prec.Add(score_b.precision);
      stateless_rec.Add(score_a.recall);
      session_rec.Add(score_b.recall);
    }
    table.AddRow({std::to_string(n), "stateless (paper)",
                  util::FormatDouble(stateless_size.mean(), 2),
                  util::FormatDouble(stateless_prec.mean(), 3),
                  util::FormatDouble(stateless_rec.mean(), 3)});
    table.AddRow({std::to_string(n), "session-hardened",
                  util::FormatDouble(session_size.mean(), 2),
                  util::FormatDouble(session_prec.mean(), 3),
                  util::FormatDouble(session_rec.mean(), 3)});
    std::fprintf(stderr, "[session] n=%zu done (%zu users)\n", n, evaluated);
  }

  std::printf("\nCross-cycle intersection attack (top-%zu per cycle, "
              "LDA%03zu, eps1=5%%, eps2=1%%)\n",
              top_m, num_topics);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexpected: against the stateless scheme the surviving set collapses\n"
      "towards the genuine topics as n grows (precision -> 1): repeating a\n"
      "query erodes the paper's per-cycle guarantee. The session-hardened\n"
      "protector keeps its cover story in every cycle, so the survivors\n"
      "stay numerous and precision stays near 1/survivors.\n");
  return 0;
}
