// Section V-A future work, measured: train the LDA model on a
// REPRESENTATIVE SAMPLE of the corpus (document sampling and/or only the
// impactful TF-IDF words) and check how much of TopPriv's privacy behaviour
// survives. Also reports the training-cost and model-size savings that
// motivate sampling in the first place.

#include <cstdio>

#include "corpus/sampling.h"
#include "experiments/fixture.h"
#include "topicmodel/gibbs_trainer.h"
#include "topicmodel/inference.h"
#include "toppriv/ghost_generator.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

using namespace toppriv;
using experiments::ExperimentFixture;

namespace {

struct VariantResult {
  double train_seconds = 0.0;
  double tokens_millions = 0.0;
  double exposure_pct = 0.0;
  double cycle_length = 0.0;
  double satisfied = 0.0;
};

VariantResult Run(ExperimentFixture& fixture, const corpus::Corpus& training,
                  size_t num_topics) {
  VariantResult out;
  out.tokens_millions =
      static_cast<double>(training.total_tokens()) / 1e6;

  util::WallTimer timer;
  topicmodel::TrainerOptions options;
  options.num_topics = num_topics;
  options.iterations = fixture.config().lda_iterations;
  options.seed = 7000 + num_topics;
  topicmodel::LdaModel model =
      topicmodel::GibbsTrainer(options).Train(training);
  out.train_seconds = timer.ElapsedSeconds();

  topicmodel::LdaInferencer inferencer(model);
  core::PrivacySpec spec;  // (5%, 1%)
  core::GhostQueryGenerator generator(model, inferencer, spec);
  util::Rng rng(77);
  util::OnlineStats exposure, cycle_len;
  size_t satisfied = 0, counted = 0;
  for (const corpus::BenchmarkQuery& q : fixture.workload()) {
    core::QueryCycle cycle = generator.Protect(q.term_ids, &rng);
    exposure.Add(cycle.exposure_after * 100.0);
    cycle_len.Add(static_cast<double>(cycle.length()));
    if (cycle.met_epsilon2) ++satisfied;
    ++counted;
  }
  out.exposure_pct = exposure.mean();
  out.cycle_length = cycle_len.mean();
  out.satisfied = counted > 0 ? static_cast<double>(satisfied) / counted : 0;
  return out;
}

}  // namespace

int main() {
  ExperimentFixture fixture;
  const size_t num_topics = 50;
  const corpus::Corpus& full = fixture.corpus();

  struct Variant {
    const char* name;
    corpus::SamplingOptions options;
  };
  std::vector<Variant> variants = {
      {"full corpus", {}},
      {"50% documents", {.document_fraction = 0.5}},
      {"25% documents", {.document_fraction = 0.25}},
      {"40% impactful words", {.vocabulary_fraction = 0.4}},
      {"50% docs + 40% words",
       {.document_fraction = 0.5, .vocabulary_fraction = 0.4}},
  };

  util::TablePrinter table({"training set", "Mtokens", "train(s)",
                            "exposure(%)", "cycle v", "met eps2"});
  for (const Variant& v : variants) {
    corpus::Corpus sample = corpus::SampleCorpus(full, v.options);
    VariantResult r = Run(fixture, sample, num_topics);
    table.AddRow({v.name, util::FormatDouble(r.tokens_millions, 3),
                  util::FormatDouble(r.train_seconds, 1),
                  util::FormatDouble(r.exposure_pct, 3),
                  util::FormatDouble(r.cycle_length, 2),
                  util::FormatDouble(r.satisfied, 2)});
    std::fprintf(stderr, "[sampling] %s done\n", v.name);
  }

  std::printf("\nSection V-A future work: LDA%03zu trained on representative "
              "samples, driving TopPriv at (5%%, 1%%)\n",
              num_topics);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexpected: training cost falls with the sample while exposure stays\n"
      "below eps2 and the satisfied fraction stays ~1.0 — the sampled model\n"
      "still localizes intentions well enough to pick effective masking\n"
      "topics (inference runs over the original queries, since sampling\n"
      "preserves the term-id space).\n");
  return 0;
}
