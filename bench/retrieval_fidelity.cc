// Validates the paper's usability claim (Section V intro, Fig. 1): the
// trusted client returns the EXACT results of the genuine query — ghost
// results are discarded client-side, so precision/recall are untouched.
// This is the property that distinguishes TopPriv from query-substitution
// (Murugesan-Clifton) and embellishment (PDX) schemes, which perturb the
// query the engine actually scores.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "experiments/fixture.h"
#include "pdx/embellisher.h"
#include "pdx/thesaurus.h"
#include "search/engine.h"
#include "search/eval.h"
#include "search/scorer.h"
#include "topicmodel/inference.h"
#include "toppriv/client.h"
#include "util/io.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table.h"

using namespace toppriv;
using experiments::ExperimentFixture;

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  ExperimentFixture fixture;
  const size_t k = 20;
  const size_t num_topics = 200;
  const topicmodel::LdaModel& model = fixture.model(num_topics);

  // Monolithic by default; TOPPRIV_SHARDS=K runs the same figure over a
  // sharded engine (results are identical by the parity contract).
  std::unique_ptr<search::QueryEngine> engine_owner =
      fixture.MakeEngine(search::MakeBm25Scorer());
  search::QueryEngine& engine = *engine_owner;
  topicmodel::LdaInferencer inferencer(model);
  core::PrivacySpec spec;
  core::GhostQueryGenerator generator(model, inferencer, spec);
  core::TrustedClient client(&engine, &generator, util::Rng(99));

  pdx::Thesaurus thesaurus(fixture.corpus(), model);
  pdx::PdxEmbellisher embellisher(thesaurus);
  util::Rng pdx_rng(98);

  size_t queries = 0, toppriv_identical = 0;
  double pdx_overlap_sum = 0.0, pdx_ndcg_sum = 0.0;
  for (const corpus::BenchmarkQuery& q : fixture.workload()) {
    std::vector<search::ScoredDoc> plain = engine.Evaluate(q.term_ids, k);
    if (plain.empty()) continue;
    ++queries;

    // TopPriv: protected search must be bit-identical.
    core::ProtectedSearchResult ours = client.Search(q.term_ids, k);
    if (search::SameRanking(ours.results, plain, 1e-9)) ++toppriv_identical;

    // PDX WITHOUT its homomorphic server modification: the engine scores
    // the embellished query, so results drift. (PDX's fix is precisely the
    // engine change TopPriv avoids.)
    pdx::EmbellishedQuery embellished =
        embellisher.Embellish(q.term_ids, 4.0, &pdx_rng);
    std::vector<search::ScoredDoc> drifted =
        engine.Evaluate(embellished.terms, k);
    std::vector<corpus::DocId> plain_docs;
    for (const auto& sd : plain) plain_docs.push_back(sd.doc);
    pdx_overlap_sum += search::PrecisionAtK(drifted, plain_docs, k);
    pdx_ndcg_sum += search::NdcgAtK(drifted, plain_docs, k);
  }

  util::TablePrinter table({"scheme", "metric", "value"});
  table.AddRow({"TopPriv", "queries with identical top-20",
                util::StrFormat("%zu / %zu", toppriv_identical, queries)});
  table.AddRow({"PDX (4x, unmodified engine)", "top-20 overlap vs genuine",
                util::FormatDouble(pdx_overlap_sum / queries, 3)});
  table.AddRow({"PDX (4x, unmodified engine)", "nDCG@20 vs genuine",
                util::FormatDouble(pdx_ndcg_sum / queries, 3)});

  std::printf(
      "\nRetrieval fidelity under privacy protection (k=%zu, engine: %zu "
      "shard(s), %s evaluation)\n",
      k, fixture.config().num_shards,
      search::EvalStrategyName(engine.eval_strategy()));
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper claim check: TopPriv preserves results exactly (%zu/%zu);\n"
      "an embellished query handed to an unmodified engine does not, which\n"
      "is why PDX needs the engine re-engineered and TopPriv does not.\n",
      toppriv_identical, queries);

  if (!json_path.empty()) {
    util::JsonWriter json;
    json.BeginObject();
    json.Field("bench", "retrieval_fidelity");
    // Bumped when the emitted fields change; bench_compare.py warns (never
    // fails) when baseline and current disagree.
    json.Field("schema_version", static_cast<uint64_t>(2));
    json.Field("k", static_cast<uint64_t>(k));
    json.Field("num_topics", static_cast<uint64_t>(num_topics));
    json.Field("strategy", search::EvalStrategyName(engine.eval_strategy()));
    json.Field("shards", static_cast<uint64_t>(fixture.config().num_shards));
    json.Field("queries", static_cast<uint64_t>(queries));
    json.Field("toppriv_identical", static_cast<uint64_t>(toppriv_identical));
    json.Field("pdx_topk_overlap", pdx_overlap_sum / queries);
    json.Field("pdx_ndcg", pdx_ndcg_sum / queries);
    json.EndObject();
    util::Status status = util::WriteFile(json_path, json.str() + "\n");
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return toppriv_identical == queries ? 0 : 1;
}
