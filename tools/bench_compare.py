#!/usr/bin/env python3
"""Compare a bench JSON sidecar against its committed baseline.

Two formats, auto-detected:

  * serving  -- serving_throughput --json output: serving_cells /
    retrieval_cells / live_cells arrays whose throughput metrics
    (queries_per_second, cycles_per_second, ingest_docs_per_second) are
    higher-is-better.
  * micro    -- Google Benchmark --benchmark_out=json output (the fallback
    harness emits the same shape): benchmarks[].real_time in time_unit,
    lower-is-better.

A cell present in both files whose metric regressed by more than
--threshold (default 10%) fails the run with exit code 1 and a per-cell
report. Cells only in the baseline are warned about (a renamed or removed
bench should update the baseline in the same PR); cells only in the
current run are new and pass silently. Use --update to overwrite the
baseline with the current run instead of comparing (how the committed
JSONs are refreshed when a PR intentionally moves the numbers).
"""

import argparse
import json
import sys

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as f:
        return json.load(f)


def serving_cells(doc):
    """(name -> (metric, higher_is_better)) for a serving_throughput run."""
    cells = {}
    for c in doc.get("serving_cells", []):
        key = "serving/{}/shards{}/threads{}".format(
            c["strategy"], c["shards"], c["threads"])
        cells[key + "/qps"] = c["queries_per_second"]
        cells[key + "/cps"] = c["cycles_per_second"]
    for c in doc.get("retrieval_cells", []):
        key = "retrieval/{}/shards{}".format(c["strategy"], c["shards"])
        cells[key + "/qps"] = c["queries_per_second"]
    for c in doc.get("live_cells", []):
        key = "live/{}/threads{}/eval{}".format(
            c["strategy"], c["threads"], c.get("eval_threads", 1))
        cells[key + "/qps"] = c["queries_per_second"]
        cells[key + "/ingest_dps"] = c["ingest_docs_per_second"]
    return cells, True


def micro_cells(doc):
    """(name -> ns) for a Google Benchmark (or fallback-harness) run."""
    cells = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        unit = _TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        cells[b["name"]] = b["real_time"] * unit
    return cells, False


def extract(doc):
    if "benchmarks" in doc:
        return micro_cells(doc)
    return serving_cells(doc)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly generated JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional regression that fails (default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite baseline with current and exit 0")
    args = parser.parse_args()

    if args.update:
        with open(args.current) as src, open(args.baseline, "w") as dst:
            dst.write(src.read())
        print("bench_compare: baseline %s updated from %s" %
              (args.baseline, args.current))
        return 0

    base_doc, cur_doc = load(args.baseline), load(args.current)
    base, base_higher = extract(base_doc)
    cur, cur_higher = extract(cur_doc)
    if base_higher != cur_higher:
        print("bench_compare: baseline and current are different formats",
              file=sys.stderr)
        return 2
    higher_is_better = base_higher

    regressions, compared = [], 0
    for name in sorted(base):
        if name not in cur:
            print("bench_compare: WARNING: %s in baseline only "
                  "(refresh the baseline if it was renamed/removed)" % name)
            continue
        b, c = base[name], cur[name]
        if b <= 0:
            continue
        compared += 1
        # Regression fraction, positive = worse.
        delta = (b - c) / b if higher_is_better else (c - b) / b
        marker = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            marker = "  <-- REGRESSION"
        print("%-52s base=%12.2f cur=%12.2f  %+6.1f%%%s" %
              (name, b, c, -delta * 100.0 if higher_is_better
               else delta * 100.0, marker))
    for name in sorted(set(cur) - set(base)):
        print("%-52s (new; no baseline)" % name)

    if compared == 0:
        print("bench_compare: WARNING: no overlapping cells; nothing gated")
    if regressions:
        print("\nbench_compare: FAIL — %d cell(s) regressed more than %.0f%%:"
              % (len(regressions), args.threshold * 100.0), file=sys.stderr)
        for name, delta in regressions:
            print("  %s: %.1f%% worse" % (name, delta * 100.0),
                  file=sys.stderr)
        return 1
    print("bench_compare: OK (%d cells within %.0f%%)" %
          (compared, args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
