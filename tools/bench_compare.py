#!/usr/bin/env python3
"""Compare a bench JSON sidecar against its committed baseline.

Two formats, auto-detected:

  * serving  -- serving_throughput --json output: serving_cells /
    retrieval_cells / live_cells / open_loop_cells arrays. Throughput
    metrics (queries_per_second, cycles_per_second, ingest_docs_per_second)
    are higher-is-better; open-loop latency percentiles are
    lower-is-better and gated at a widened threshold (wall-clock noise);
    shed_rate is informational (printed, never gated -- it tracks offered
    load, not code quality).
  * micro    -- Google Benchmark --benchmark_out=json output (the fallback
    harness emits the same shape): benchmarks[].real_time in time_unit,
    lower-is-better.

A cell present in both files whose gated metric regressed by more than
--threshold (default 10%, scaled by the cell's noise multiplier) fails the
run with exit 1 and a per-cell report. A cell present in only ONE of the
two files is a hard failure in BOTH directions: baseline-only means a
bench was renamed/removed, current-only means a bench was added -- either
way the committed baseline must be refreshed in the same PR (run the bench
with --json and re-commit via --update). A cell object missing an expected
metric key is likewise a hard failure naming the file and key, never a
bare KeyError traceback. Use --update to overwrite the baseline with the
current run instead of comparing.
"""

import argparse
import json
import sys

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Wall-clock latency percentiles jitter far more than throughput on shared
# CI runners; their gate threshold is scaled by this factor.
_LATENCY_NOISE_MULT = 3.0


class BenchFormatError(Exception):
    """A bench JSON is structurally wrong (missing key, bad shape)."""


class Cell(object):
    """One gateable metric: value + direction + noise allowance.

    higher_is_better None means informational: printed for trend-watching
    but never gated (e.g. shed_rate, which tracks offered load).
    """

    def __init__(self, value, higher_is_better, noise_mult=1.0):
        self.value = value
        self.higher_is_better = higher_is_better
        self.noise_mult = noise_mult


def load(path):
    with open(path) as f:
        return json.load(f)


def metric(c, key, path, where):
    """c[key], or a clear failure naming the file and the missing key."""
    if key not in c:
        raise BenchFormatError(
            "%s: %s cell %r has no %r key (format drift between the bench "
            "binary and this script -- regenerate the JSON and update both "
            "sides in the same PR)" % (path, where, c.get("strategy", "?"),
                                       key))
    return c[key]


def serving_cells(doc, path):
    """name -> Cell for a serving_throughput run."""
    cells = {}
    for c in doc.get("serving_cells", []):
        key = "serving/{}/shards{}/threads{}".format(
            metric(c, "strategy", path, "serving"),
            metric(c, "shards", path, "serving"),
            metric(c, "threads", path, "serving"))
        cells[key + "/qps"] = Cell(
            metric(c, "queries_per_second", path, "serving"), True)
        cells[key + "/cps"] = Cell(
            metric(c, "cycles_per_second", path, "serving"), True)
    for c in doc.get("retrieval_cells", []):
        key = "retrieval/{}/shards{}".format(
            metric(c, "strategy", path, "retrieval"),
            metric(c, "shards", path, "retrieval"))
        cells[key + "/qps"] = Cell(
            metric(c, "queries_per_second", path, "retrieval"), True)
    for c in doc.get("live_cells", []):
        key = "live/{}/threads{}/eval{}".format(
            metric(c, "strategy", path, "live"),
            metric(c, "threads", path, "live"), c.get("eval_threads", 1))
        cells[key + "/qps"] = Cell(
            metric(c, "queries_per_second", path, "live"), True)
        cells[key + "/ingest_dps"] = Cell(
            metric(c, "ingest_docs_per_second", path, "live"), True)
    for c in doc.get("open_loop_cells", []):
        key = "open_loop/{}/{}".format(
            metric(c, "strategy", path, "open_loop"),
            metric(c, "load", path, "open_loop"))
        cells[key + "/cps"] = Cell(
            metric(c, "cycles_per_second", path, "open_loop"), True)
        for pct in ("p50", "p95", "p99"):
            cells[key + "/" + pct] = Cell(
                metric(c, pct + "_latency_ms", path, "open_loop"), False,
                _LATENCY_NOISE_MULT)
        cells[key + "/shed_rate"] = Cell(
            metric(c, "shed_rate", path, "open_loop"), None)
    return cells


def micro_cells(doc, path):
    """name -> Cell (ns, lower-is-better) for a Google Benchmark run."""
    cells = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        unit = _TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        cells[metric(b, "name", path, "micro")] = Cell(
            metric(b, "real_time", path, "micro") * unit, False)
    return cells


def extract(doc, path):
    if "benchmarks" in doc:
        return "micro", micro_cells(doc, path)
    return "serving", serving_cells(doc, path)


def schema_version(doc):
    """The emitter's schema_version, wherever the format keeps it.

    serving_throughput writes it at the top level; the micro harnesses
    write it in Google Benchmark's context object. Absent (pre-versioning
    baselines) -> None.
    """
    if "schema_version" in doc:
        return doc["schema_version"]
    context = doc.get("context")
    if isinstance(context, dict):
        return context.get("schema_version")
    return None


def warn_on_schema_skew(base_doc, cur_doc, base_path, cur_path):
    """Version skew is a heads-up, never a failure: the cell-level
    one-side-only check below is what actually gates format drift."""
    base_v, cur_v = schema_version(base_doc), schema_version(cur_doc)
    if base_v != cur_v:
        print("bench_compare: WARNING: schema_version skew — %s has %r, "
              "%s has %r (comparing anyway; refresh the baseline with "
              "--update to silence this)" %
              (base_path, base_v, cur_path, cur_v))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly generated JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional regression that fails (default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite baseline with current and exit 0")
    args = parser.parse_args()

    if args.update:
        with open(args.current) as src, open(args.baseline, "w") as dst:
            dst.write(src.read())
        print("bench_compare: baseline %s updated from %s" %
              (args.baseline, args.current))
        return 0

    base_doc, cur_doc = load(args.baseline), load(args.current)
    warn_on_schema_skew(base_doc, cur_doc, args.baseline, args.current)
    try:
        base_fmt, base = extract(base_doc, args.baseline)
        cur_fmt, cur = extract(cur_doc, args.current)
    except BenchFormatError as e:
        print("bench_compare: FAIL — %s" % e, file=sys.stderr)
        return 2
    if base_fmt != cur_fmt:
        print("bench_compare: FAIL — %s is a %r baseline but %s is a %r run"
              % (args.baseline, base_fmt, args.current, cur_fmt),
              file=sys.stderr)
        return 2

    missing, regressions, compared = [], [], 0
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            missing.append("%s exists in baseline %s but is missing from %s"
                           % (name, args.baseline, args.current))
            continue
        if name not in base:
            missing.append("%s exists in %s but is missing from baseline %s"
                           % (name, args.current, args.baseline))
            continue
        b, c = base[name], cur[name]
        if b.higher_is_better is None:
            print("%-52s base=%12.4f cur=%12.4f  (informational)" %
                  (name, b.value, c.value))
            continue
        if b.value <= 0:
            continue
        compared += 1
        # Regression fraction, positive = worse.
        delta = ((b.value - c.value) / b.value if b.higher_is_better
                 else (c.value - b.value) / b.value)
        gate = args.threshold * b.noise_mult
        marker = ""
        if delta > gate:
            regressions.append((name, delta, gate))
            marker = "  <-- REGRESSION"
        print("%-52s base=%12.2f cur=%12.2f  %+6.1f%%%s" %
              (name, b.value, c.value,
               -delta * 100.0 if b.higher_is_better else delta * 100.0,
               marker))

    if missing:
        print("\nbench_compare: FAIL — %d cell(s) present on one side only "
              "(a bench was added, renamed or removed; refresh the committed "
              "baseline in the same PR: rerun the bench with --json and "
              "apply --update):" % len(missing), file=sys.stderr)
        for line in missing:
            print("  " + line, file=sys.stderr)
        return 1
    if compared == 0:
        print("bench_compare: WARNING: no overlapping cells; nothing gated")
    if regressions:
        print("\nbench_compare: FAIL — %d cell(s) regressed past their gate:"
              % len(regressions), file=sys.stderr)
        for name, delta, gate in regressions:
            print("  %s: %.1f%% worse (gate %.0f%%)" %
                  (name, delta * 100.0, gate * 100.0), file=sys.stderr)
        return 1
    print("bench_compare: OK (%d cells gated at base threshold %.0f%%)" %
          (compared, args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
